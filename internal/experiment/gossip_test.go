package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/simclock"
)

// The gossip health-plane suite: the global-gossip/partition/staleview
// scenarios replace the central Director with replicated directors that only
// share health through simulated push-pull gossip, and every lane routes on
// its home replica's eventually-consistent view.  The plane runs entirely on
// the control timeline, so its output must be byte-identical for
// EventWorkers {0, 1, 4, GOMAXPROCS} exactly like the central scenarios.

// gossipScenarioNames lists every registered gossip scenario.
func gossipScenarioNames() []string {
	return []string{"global-gossip", "global-partition", "global-staleview"}
}

// TestGlobalGossipScenarioSmoke: cheap always-on canary — every gossip
// scenario builds, runs a few minutes, serves traffic, gossips and completes
// control eras.
func TestGlobalGossipScenarioSmoke(t *testing.T) {
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range gossipScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := BuildScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			sc.Horizon = 5 * simclock.Minute
			res, err := Run(sc, np)
			if err != nil {
				t.Fatal(err)
			}
			if res.Eras == 0 {
				t.Fatal("no control eras completed")
			}
			if res.Gossip == nil {
				t.Fatal("no gossip stats recorded")
			}
			if res.Gossip.Replicas != 3 || res.Gossip.Rounds == 0 || res.Gossip.Sent == 0 {
				t.Fatalf("gossip plane idle: %+v", res.Gossip)
			}
			total := uint64(0)
			for _, n := range res.GSLBRouted {
				total += n
			}
			if total == 0 {
				t.Fatal("replicas routed no requests")
			}
			if res.SuccessRatio < 0.5 {
				t.Fatalf("success ratio %.3f, want >= 0.5", res.SuccessRatio)
			}
			if res.Recorder.Series("gossip_convergence", "max_divergence").Len() == 0 {
				t.Fatal("no gossip_convergence series recorded")
			}
		})
	}
}

// TestGlobalGossipWorkersEquivalence is the gossip determinism contract:
// byte-identical output (summary, routed counts, transition log, gossip
// counters and the SHA-256 of every raw series, gossip_convergence included)
// across EventWorkers 0, 1, 4 and GOMAXPROCS, for every gossip scenario.
// The CI multicore-determinism job replays it with GOMAXPROCS=4 under -race.
func TestGlobalGossipWorkersEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every gossip scenario once per worker count")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{0, 1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	for _, name := range gossipScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(workers int) []byte {
				sc, err := BuildScenario(name, 42)
				if err != nil {
					t.Fatal(err)
				}
				sc.Horizon = goldenHorizon
				sc.EventWorkers = workers
				res, err := Run(sc, np)
				if err != nil {
					t.Fatal(err)
				}
				return eventLoopFingerprint(t, res)
			}
			ref := run(counts[0])
			for _, workers := range counts[1:] {
				if got := run(workers); !bytes.Equal(got, ref) {
					t.Fatalf("EventWorkers=%d diverged from EventWorkers=%d\n--- got ---\n%s\n--- want ---\n%s",
						workers, counts[0], got, ref)
				}
			}
		})
	}
}

// TestGlobalPartitionSplitBrain asserts the split-brain story end to end on
// the real deployment: while replica 2 is partitioned away and region1
// blacks out, the majority side drains region1 and fails over, but the lane
// homed to the isolated replica keeps routing into the blackout on its
// frozen view — until the heal propagates the drain.
func TestGlobalPartitionSplitBrain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 30-minute partition simulation")
	}
	sc, err := BuildScenario("global-partition", 42)
	if err != nil {
		t.Fatal(err)
	}
	sc.Horizon = goldenHorizon
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(sc, np)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Run(sc.Horizon); err != nil {
		t.Fatal(err)
	}

	// The authoritative (owner-side) transition log still shows the drain.
	var drained bool
	for _, tr := range mgr.GSLBTransitions() {
		if strings.Contains(tr, "region1 ") && strings.Contains(tr, "degraded->drained") {
			drained = true
		}
	}
	if !drained {
		t.Fatal("region1 never drained on the owner's view")
	}

	// Per-lane routed counters: the three lanes are homed to replicas 0, 1
	// and 2 in order.  During the 8 partition minutes that overlap the
	// blackout, only lane 2 (isolated replica) keeps sending to region1, so
	// its region1 total must clearly exceed the majority lanes'.
	perLane := mgr.GSLBRoutedPerLane()
	if len(perLane) != 3 {
		t.Fatalf("expected 3 request lanes, got %d", len(perLane))
	}
	if perLane[2][0] <= perLane[0][0] || perLane[2][0] <= perLane[1][0] {
		t.Fatalf("split-brain not visible in per-lane routing: region1 counts per lane = %d/%d/%d (lane 2 should lead)",
			perLane[0][0], perLane[1][0], perLane[2][0])
	}

	// The divergence series ramps while the partition holds region1's drain
	// away from replica 2, and collapses after the heal.
	div := mgr.Recorder().Series("gossip_convergence", "max_divergence")
	if div.Len() == 0 {
		t.Fatal("no gossip_convergence series recorded")
	}
	peak := 0.0
	for _, v := range div.Values() {
		if v > peak {
			peak = v
		}
	}
	if peak < 10 {
		t.Fatalf("peak view divergence %.0f during a 10-minute partition, want >= 10 probe generations", peak)
	}
	if end := div.Last(); end > 2 {
		t.Fatalf("final view divergence %.0f, want near 0 after the heal", end)
	}

	// Cross-cut gossip messages were dropped, and the plane kept converging
	// afterwards.
	st := mgr.GossipStats()
	if st == nil || st.Dropped == 0 {
		t.Fatalf("expected partition drops in the gossip stats: %+v", st)
	}
}

// TestGoldenGlobalGossipScenarios byte-pins every gossip scenario under
// policy2 — summary, routed counts, transition log, gossip counters and the
// SHA-256 of the raw series (which include gossip_convergence).  Regenerate
// with:
//
//	go test ./internal/experiment -run TestGoldenGlobalGossip -update
func TestGoldenGlobalGossipScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three 30-minute gossip simulations")
	}
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range gossipScenarioNames() {
		name := name
		t.Run(name+"/policy2", func(t *testing.T) {
			sc, err := BuildScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			sc.Horizon = goldenHorizon
			res, err := Run(sc, np)
			if err != nil {
				t.Fatal(err)
			}
			got := eventLoopFingerprint(t, res)
			path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-policy2.json", name))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("summary drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestGossipScenarioJSONRoundTrip: the gossip scenarios must survive the
// config-file round trip including the gossip tuning fields and the
// partition-fault schedule.
func TestGossipScenarioJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range gossipScenarioNames() {
		sc, err := BuildScenario(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := SaveScenarioFile(path, sc); err != nil {
			t.Fatal(err)
		}
		back, err := LoadScenarioFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.GossipReplicas != sc.GossipReplicas || back.GossipInterval != sc.GossipInterval ||
			back.GossipFanout != sc.GossipFanout || back.GossipDelay != sc.GossipDelay ||
			back.GossipLoss != sc.GossipLoss || len(back.PartitionFaults) != len(sc.PartitionFaults) {
			t.Fatalf("%s: round trip lost gossip fields: %+v", name, back)
		}
		for i, f := range sc.PartitionFaults {
			g := back.PartitionFaults[i]
			if g.At != f.At || g.Duration != f.Duration || len(g.Replicas) != len(f.Replicas) {
				t.Fatalf("%s: partition fault %d changed: %+v -> %+v", name, i, f, g)
			}
		}
	}
}
