package core

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Aggregator maintains, at the leader VMC, the smoothed Region Mean Time To
// Failure of every region according to equation (1) of the paper:
//
//	RMTTF_i^t = (1-β) · RMTTF_i^{t-1} + β · lastRMTTF_i
//
// where lastRMTTF_i is the latest average MTTF the region's VMC reported for
// its active VMs.
type Aggregator struct {
	beta    float64
	regions []string
	ewma    map[string]*stats.EWMA
}

// NewAggregator builds an aggregator over the named regions with smoothing
// factor beta (clamped to [0,1], as the paper requires 0 ≤ β ≤ 1).
func NewAggregator(beta float64, regions []string) *Aggregator {
	a := &Aggregator{beta: beta, regions: append([]string(nil), regions...), ewma: map[string]*stats.EWMA{}}
	for _, r := range regions {
		a.ewma[r] = stats.NewEWMA(beta)
	}
	return a
}

// Beta returns the smoothing factor actually in use.
func (a *Aggregator) Beta() float64 {
	if len(a.regions) == 0 {
		return a.beta
	}
	return a.ewma[a.regions[0]].Beta()
}

// Regions returns the region names in registration order.
func (a *Aggregator) Regions() []string { return append([]string(nil), a.regions...) }

// Observe folds the lastRMTTF reported by a region into its smoothed value
// and returns the new current RMTTF.  Observing an unknown region registers
// it.
func (a *Aggregator) Observe(region string, lastRMTTF float64) float64 {
	e, ok := a.ewma[region]
	if !ok {
		e = stats.NewEWMA(a.beta)
		a.ewma[region] = e
		a.regions = append(a.regions, region)
	}
	return e.Update(lastRMTTF)
}

// Current returns the smoothed RMTTF of a region (0 before any observation).
func (a *Aggregator) Current(region string) float64 {
	if e, ok := a.ewma[region]; ok {
		return e.Value()
	}
	return 0
}

// Snapshot returns the smoothed RMTTF of every region, in registration order.
func (a *Aggregator) Snapshot() []float64 {
	out := make([]float64, len(a.regions))
	for i, r := range a.regions {
		out[i] = a.ewma[r].Value()
	}
	return out
}

// SnapshotMap returns the smoothed RMTTFs keyed by region name.
func (a *Aggregator) SnapshotMap() map[string]float64 {
	out := make(map[string]float64, len(a.regions))
	for _, r := range a.regions {
		out[r] = a.ewma[r].Value()
	}
	return out
}

// Spread returns (max-min)/mean of the current smoothed RMTTFs — the quantity
// the policies are trying to drive to zero (all regions showing the same
// MTTF).  It returns 0 when fewer than two regions are registered.
func (a *Aggregator) Spread() float64 {
	vals := a.Snapshot()
	if len(vals) < 2 {
		return 0
	}
	m := stats.Mean(vals)
	if m == 0 {
		return 0
	}
	return (stats.Max(vals) - stats.Min(vals)) / m
}

// String renders the aggregator state sorted by region name.
func (a *Aggregator) String() string {
	names := append([]string(nil), a.regions...)
	sort.Strings(names)
	s := ""
	for i, r := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.0fs", r, a.ewma[r].Value())
	}
	return s
}
