// Two-region experiment: the Figure 3 scenario of the paper.
//
// Region 1 (6 m3.medium VMs, Amazon EC2 Ireland) and Region 3 (4 private VMs
// in Munich) serve client populations of very different sizes.  The example
// runs the scenario under each of the three load-balancing policies and
// prints, for each one, the three rows of the paper's Figure 3 — the RMTTF of
// each region over time, the workload fraction f_i of each region over time,
// and the client response time — followed by the qualitative comparison of
// Section VI-B.
//
// Run with:
//
//	go run ./examples/tworegion
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/simclock"
)

func main() {
	scenario := experiment.Figure3Scenario(42)
	scenario.Horizon = 90 * simclock.Minute // enough to reach steady state

	results := map[string]*experiment.Result{}
	for _, np := range experiment.Policies() {
		fmt.Printf("running the two-region scenario under %s ...\n", np.Label)
		res, err := experiment.Run(scenario, np)
		if err != nil {
			log.Fatal(err)
		}
		results[np.Key] = res
		fmt.Print(experiment.FigureReport(res))
		fmt.Println()
	}

	fmt.Println("=== policy comparison (Figure 3) ===")
	fmt.Print(experiment.SummaryTable(results))
	fmt.Println("qualitative claims of Section VI-B:")
	fmt.Print(experiment.EvaluateClaims(results))
}
