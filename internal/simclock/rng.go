package simclock

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 seeding an xoshiro256** core).  The simulation uses its own
// generator instead of math/rand so that experiment runs are reproducible
// across Go versions and so that independent streams can be forked cheaply
// for each virtual machine / client population.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to fill the state; guarantees a non-zero state.
	x := seed
	for i := range r.s {
		r.s[i] = mix64(x)
		x += 0x9e3779b97f4a7c15
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Fork derives an independent stream from the current one.  The child's
// sequence does not overlap the parent's for any practical horizon.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// mix64 is the splitmix64 finaliser, the same mixing function NewRNG uses to
// expand a seed into the xoshiro state.  It is a bijection on uint64, so
// distinct inputs always yield distinct outputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed splits a base seed into the seed of an independent stream
// identified by the given indices (job index, replication index, ...).  The
// derivation is a pure function of (base, indices): it does not depend on any
// generator state, call order, or goroutine scheduling, which is what makes
// parallel experiment sweeps bit-identical regardless of worker count or
// completion order.  Each index is folded in through the splitmix64 finaliser
// so that DeriveSeed(s, a, b) ≠ DeriveSeed(s, b, a) and neighbouring indices
// land on uncorrelated streams.
func DeriveSeed(base uint64, indices ...uint64) uint64 {
	s := mix64(base ^ 0x5851f42d4c957f2d)
	for _, idx := range indices {
		s = mix64(s ^ mix64(idx+0x9e3779b97f4a7c15))
	}
	return s
}

// NewStreamRNG returns a generator on the independent stream derived from the
// base seed and the stream indices via DeriveSeed.
func NewStreamRNG(base uint64, indices ...uint64) *RNG {
	return NewRNG(DeriveSeed(base, indices...))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo,hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.  A
// non-positive mean yields zero.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller transform).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value parameterised by the
// mean and standard deviation of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with scale xm and shape alpha,
// commonly used for heavy-tailed think times and request sizes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean (Knuth's
// algorithm for small means, normal approximation for large ones).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= r.Float64()
		if p <= l {
			return k - 1
		}
	}
}

// Binomial returns a binomially distributed count: the number of successes
// among n independent trials with success probability p.  Cohort-compressed
// client populations use it to split a counted state bucket across a
// transition ("how many of the n thinking clients fire this tick").  Small
// means use inversion (one uniform walked down the CDF); large means use the
// normal approximation clamped to the support, mirroring Poisson above.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		// Count failures instead: keeps q^n away from underflow in the
		// inversion branch and shortens the expected CDF walk.
		return n - r.Binomial(n, 1-p)
	}
	np := float64(n) * p
	if np > 50 {
		v := r.Normal(np, math.Sqrt(np*(1-p)))
		if v < 0 {
			return 0
		}
		k := int(v + 0.5)
		if k > n {
			return n
		}
		return k
	}
	// Inversion (BINV): start at P(0) = q^n and walk the CDF with the pmf
	// recurrence P(k+1) = P(k) * (n-k)/(k+1) * p/q.  With p <= 0.5 and
	// np <= 50, q^n >= e^-51, comfortably inside float range.
	q := 1 - p
	s := p / q
	f := math.Pow(q, float64(n))
	u := r.Float64()
	for k := 0; ; k++ {
		if u < f {
			return k
		}
		u -= f
		if k == n {
			// Floating-point slack left u above the summed pmf; the mass
			// beyond k = n is zero, so clamp to the support.
			return n
		}
		f *= s * float64(n-k) / float64(k+1)
	}
}

// Erlang returns an Erlang-distributed value: the sum of n independent
// exponential draws, each with the given mean (total mean n*mean).  A VM
// serving a cohort batch of n interactions back to back uses it as the
// batch's service time.  Large n uses the normal approximation of the sum.
func (r *RNG) Erlang(n int, mean float64) float64 {
	if n <= 0 || mean <= 0 {
		return 0
	}
	if n > 50 {
		fn := float64(n)
		v := r.Normal(fn*mean, math.Sqrt(fn)*mean)
		if v < 0 {
			return 0
		}
		return v
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += r.Exp(mean)
	}
	return total
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index weighted by the non-negative
// weights.  If all weights are zero it falls back to a uniform choice.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
