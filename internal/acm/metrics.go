// The Manager's typed metrics plane: every series the deployment already
// tracks — the paper's control-loop series, the workload counters and
// latency distribution, region/controller telemetry, GSLB health and
// routing, gossip convergence — re-expressed as instruments in a
// metrics.Registry, the registry an `acmsim -metrics-addr` scrape reads
// mid-run.
//
// Determinism: publishMetrics runs only at the end of controlEra, on the
// control timeline at an epoch barrier, and reads exactly the merged views
// (currentMetrics, GSLBRouted, plane/director state) the recorder series are
// computed from.  It is a read path over already-deterministic state; no
// simulation state ever depends on an instrument, so golden bytes are
// untouched and the exposition itself is byte-identical for every
// EventWorkers value.
package acm

import (
	"fmt"

	"repro/internal/gslb"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// managerMetrics holds the Manager's registered instruments.  GSLB, RTT and
// gossip families are nil unless the deployment wires the corresponding
// plane, so a scrape only ever shows families the run can populate.
type managerMetrics struct {
	reg *metrics.Registry

	// control-loop series (the recorder's figure series, mirrored)
	rmttf       *metrics.Gauge
	fraction    *metrics.Gauge
	activeVMs   *metrics.Gauge
	respTime    *metrics.Gauge
	lambda      *metrics.Gauge
	crossRegion *metrics.Gauge
	eras        *metrics.Counter
	controlMsgs *metrics.Counter
	localReqs   *metrics.Counter
	forwarded   *metrics.Counter

	// client-side workload counters and latency distribution
	wlIssued    *metrics.Counter
	wlCompleted *metrics.Counter
	wlDropped   *metrics.Counter
	wlTimeouts  *metrics.Counter
	wlSLAMiss   *metrics.Counter
	respHist    *metrics.Histogram

	// region / controller telemetry
	csServed      *metrics.Counter
	csDropped     *metrics.Counter
	csCrashes     *metrics.Counter
	pcamProactive *metrics.Counter
	pcamReactive  *metrics.Counter

	// global traffic director / gossip health plane
	gslbHealth   *metrics.Gauge
	gslbRouted   *metrics.Counter
	gslbProbes   *metrics.Counter
	rttEwma      *metrics.Gauge
	gsDivergence *metrics.Gauge
	gsRounds     *metrics.Counter
	gsSent       *metrics.Counter
	gsDelivered  *metrics.Counter
	gsDropped    *metrics.Counter
}

// buildMetrics registers the deployment's instrument families.  Runs in
// NewManager after the director/plane wiring, so the conditional families
// match the deployment's shape.
func (m *Manager) buildMetrics() {
	reg := metrics.NewRegistry()
	mm := &managerMetrics{reg: reg}

	mm.rmttf = reg.Gauge(metrics.Opts{Name: "acm_rmttf_seconds", Help: "Smoothed residual mean time to failure per region, sampled each control era.", Source: "internal/acm", Labels: []string{"region"}})
	mm.fraction = reg.Gauge(metrics.Opts{Name: "acm_workload_fraction", Help: "Workload fraction the control loop assigns to each region.", Source: "internal/acm", Labels: []string{"region"}})
	mm.activeVMs = reg.Gauge(metrics.Opts{Name: "acm_active_vms", Help: "ACTIVE VMs per region at the last control era.", Source: "internal/acm", Labels: []string{"region"}})
	mm.respTime = reg.Gauge(metrics.Opts{Name: "acm_interval_response_time_seconds", Help: "Mean client response time over the last control interval.", Source: "internal/acm"})
	mm.lambda = reg.Gauge(metrics.Opts{Name: "acm_lambda_requests_per_second", Help: "Global request arrival rate measured over the last control interval.", Source: "internal/acm"})
	mm.crossRegion = reg.Gauge(metrics.Opts{Name: "acm_cross_region_fraction", Help: "Fraction of entry traffic the forward plan sends to another region.", Source: "internal/acm"})
	mm.eras = reg.Counter(metrics.Opts{Name: "acm_control_eras_total", Help: "Completed control eras.", Source: "internal/acm"})
	mm.controlMsgs = reg.Counter(metrics.Opts{Name: "acm_control_messages_total", Help: "Controller-to-controller messages exchanged by the control loop.", Source: "internal/acm"})
	mm.localReqs = reg.Counter(metrics.Opts{Name: "acm_requests_local_total", Help: "Requests processed in their entry region.", Source: "internal/acm"})
	mm.forwarded = reg.Counter(metrics.Opts{Name: "acm_requests_forwarded_total", Help: "Requests forwarded to a region other than their entry region.", Source: "internal/acm"})

	mm.wlIssued = reg.Counter(metrics.Opts{Name: "workload_requests_issued_total", Help: "Requests issued by clients, per population stream label.", Source: "internal/workload", Labels: []string{"stream"}})
	mm.wlCompleted = reg.Counter(metrics.Opts{Name: "workload_requests_completed_total", Help: "Requests completed successfully, per population stream label.", Source: "internal/workload", Labels: []string{"stream"}})
	mm.wlDropped = reg.Counter(metrics.Opts{Name: "workload_requests_dropped_total", Help: "Requests dropped, per population stream label.", Source: "internal/workload", Labels: []string{"stream"}})
	mm.wlTimeouts = reg.Counter(metrics.Opts{Name: "workload_request_timeouts_total", Help: "Requests abandoned client-side after the configured timeout.", Source: "internal/workload", Labels: []string{"stream"}})
	mm.wlSLAMiss = reg.Counter(metrics.Opts{Name: "workload_sla_violations_total", Help: "Completed requests whose response time exceeded the 1-second SLA.", Source: "internal/workload", Labels: []string{"stream"}})
	mm.respHist = reg.Histogram(metrics.Opts{Name: "workload_response_time_seconds", Help: "Client-observed response time distribution over all individually simulated clients.", Source: "internal/workload"}, workload.ResponseTimeBuckets)

	mm.csServed = reg.Counter(metrics.Opts{Name: "cloudsim_requests_served_total", Help: "Requests served by the region's VMs.", Source: "internal/cloudsim", Labels: []string{"region"}})
	mm.csDropped = reg.Counter(metrics.Opts{Name: "cloudsim_requests_dropped_total", Help: "Requests dropped inside the region (no serving capacity).", Source: "internal/cloudsim", Labels: []string{"region"}})
	mm.csCrashes = reg.Counter(metrics.Opts{Name: "cloudsim_vm_crashes_total", Help: "VM ageing crashes per region.", Source: "internal/cloudsim", Labels: []string{"region"}})
	mm.pcamProactive = reg.Counter(metrics.Opts{Name: "pcam_proactive_rejuvenations_total", Help: "Rejuvenations the controller scheduled before predicted failure.", Source: "internal/pcam", Labels: []string{"region"}})
	mm.pcamReactive = reg.Counter(metrics.Opts{Name: "pcam_reactive_recoveries_total", Help: "Recoveries after unpredicted VM crashes.", Source: "internal/pcam", Labels: []string{"region"}})

	if m.director != nil || m.plane != nil {
		mm.gslbHealth = reg.Gauge(metrics.Opts{Name: "gslb_region_health", Help: "Region health state as seen by the health plane (0 healthy, 1 degraded, 2 drained, 3 recovering).", Source: "internal/gslb", Labels: []string{"region"}})
		mm.gslbRouted = reg.Counter(metrics.Opts{Name: "gslb_routed_requests_total", Help: "Requests the global traffic director routed to each region.", Source: "internal/gslb", Labels: []string{"region"}})
	}
	if m.director != nil {
		mm.gslbProbes = reg.Counter(metrics.Opts{Name: "gslb_probes_total", Help: "Health probes the central director has run.", Source: "internal/gslb"})
		if m.director.LatencyAware() {
			mm.rttEwma = reg.Gauge(metrics.Opts{Name: "gslb_rtt_ewma_milliseconds", Help: "Passively learned round-trip estimate per (population stream, region).", Source: "internal/gslb", Labels: []string{"stream", "region"}})
		}
	}
	if m.plane != nil {
		mm.gsDivergence = reg.Gauge(metrics.Opts{Name: "gossip_convergence_max_divergence", Help: "Maximum probe generations any replica's view lags the region owner's.", Source: "internal/gossip"})
		mm.gsRounds = reg.Counter(metrics.Opts{Name: "gossip_rounds_total", Help: "Completed gossip rounds.", Source: "internal/gossip"})
		mm.gsSent = reg.Counter(metrics.Opts{Name: "gossip_messages_sent_total", Help: "Gossip messages sent between replicas.", Source: "internal/gossip"})
		mm.gsDelivered = reg.Counter(metrics.Opts{Name: "gossip_messages_delivered_total", Help: "Gossip messages delivered.", Source: "internal/gossip"})
		mm.gsDropped = reg.Counter(metrics.Opts{Name: "gossip_messages_dropped_total", Help: "Gossip messages lost to link loss or partitions.", Source: "internal/gossip"})
	}
	m.mm = mm
}

// MetricsRegistry returns the deployment's instrument registry — the object
// an HTTP /metrics handler scrapes.
func (m *Manager) MetricsRegistry() *metrics.Registry { return m.mm.reg }

// publishMetrics mirrors the era's already-merged state into the registry.
// met is the merged workload view controlEra computed; states/routed are the
// health-plane views it recorded (nil for regional deployments).
func (m *Manager) publishMetrics(met *workload.Metrics, smoothed, fractions []float64, lambda, respMean float64, states []gslb.HealthState, routed map[string]uint64) {
	mm := m.mm
	for i, name := range m.regionNames {
		mm.rmttf.Set(smoothed[i], name)
		mm.fraction.Set(fractions[i], name)
		mm.activeVMs.Set(float64(m.vmcs[name].ActiveVMs()), name)
	}
	mm.respTime.Set(respMean)
	mm.lambda.Set(lambda)
	mm.crossRegion.Set(m.plan.CrossRegionFraction())
	mm.eras.Set(float64(m.eras))
	mm.controlMsgs.Set(float64(m.controlMessages))
	mm.localReqs.Set(float64(m.LocalRequests()))
	mm.forwarded.Set(float64(m.ForwardedRequests()))

	for _, stream := range met.Regions() {
		mm.wlIssued.Set(float64(met.Issued(stream)), stream)
		mm.wlCompleted.Set(float64(met.Completed(stream)), stream)
		mm.wlDropped.Set(float64(met.Dropped(stream)), stream)
		mm.wlTimeouts.Set(float64(met.Timeouts(stream)), stream)
		mm.wlSLAMiss.Set(float64(met.SLAViolations(stream)), stream)
	}
	hist := met.ResponseHistogram()
	mm.respHist.SetCumulative(hist.Counts(), hist.Sum(), hist.Count())
	// Link the span layer into the exposition: each bucket carries the trace
	// ID of its deterministically picked exemplar (latest completion wins, so
	// the pick is merge-order independent).  With tracing off no exemplar is
	// ever valid and the exposition bytes are exactly the pre-tracing ones.
	for i, ex := range met.ResponseExemplars() {
		if ex.Valid {
			mm.respHist.SetExemplar(i, fmt.Sprintf("%016x", ex.TraceID), ex.Value, ex.At.Seconds())
		}
	}

	for i, r := range m.regions {
		rs := r.Stats()
		name := m.regionNames[i]
		mm.csServed.Set(float64(rs.Served), name)
		mm.csDropped.Set(float64(rs.Dropped), name)
		mm.csCrashes.Set(float64(rs.Crashes), name)
		vs := m.vmcs[name].Stats()
		mm.pcamProactive.Set(float64(vs.ProactiveRejuvenations), name)
		mm.pcamReactive.Set(float64(vs.ReactiveRecoveries), name)
	}

	if states != nil {
		for i, name := range m.regionNames {
			mm.gslbHealth.Set(float64(states[i]), name)
			mm.gslbRouted.Set(float64(routed[name]), name)
		}
	}
	if mm.gslbProbes != nil {
		mm.gslbProbes.Set(float64(m.director.Probes()))
	}
	if mm.rttEwma != nil {
		for s, sname := range m.director.Streams() {
			for r, rname := range m.regionNames {
				mm.rttEwma.Set(m.director.LatencyEstimateMs(s, r), sname, rname)
			}
		}
	}
	if mm.gsDivergence != nil {
		gs := m.plane.Stats()
		mm.gsDivergence.Set(float64(gs.MaxDivergence))
		mm.gsRounds.Set(float64(gs.Rounds))
		mm.gsSent.Set(float64(gs.Sent))
		mm.gsDelivered.Set(float64(gs.Delivered))
		mm.gsDropped.Set(float64(gs.Dropped))
	}
}
