// Global-traffic-director benchmarks: the global-failover scenario — 256
// global clients routed by the director, three regions, a probe every 15 s
// and a mid-run region blackout with failover and failback — timed at
// EventWorkers 1 (inline epochal run) and 4.  On a single core the two are
// expected to be neutral (the event loop's parallelism only pays off with
// real cores — the nightly GOMAXPROCS=4 CI job records that); what the
// bench-regression gate buys here is a lid on the director's own overhead:
// the probe, the routing-table rebuilds and the per-request Route calls all
// sit on the request path of every global scenario.
package repro

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/simclock"
)

// runGlobalDirectorBench simulates 30 minutes of the global-failover
// scenario (outage at minute 10, recovery at 20) per iteration.
func runGlobalDirectorBench(b *testing.B, eventWorkers int) {
	b.Helper()
	np, err := experiment.PolicyByKey("policy2")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := experiment.BuildScenario("global-failover", 42)
		if err != nil {
			b.Fatal(err)
		}
		sc.Horizon = 30 * simclock.Minute
		sc.EventWorkers = eventWorkers
		res, err := experiment.Run(sc, np)
		if err != nil {
			b.Fatal(err)
		}
		if res.Eras == 0 || len(res.GSLBTransitions) == 0 {
			b.Fatalf("degenerate run: eras=%d transitions=%d", res.Eras, len(res.GSLBTransitions))
		}
		b.ReportMetric(res.SuccessRatio, "success-ratio")
	}
}

func BenchmarkGlobalDirector_1(b *testing.B) { runGlobalDirectorBench(b, 1) }
func BenchmarkGlobalDirector_4(b *testing.B) { runGlobalDirectorBench(b, 4) }

// runGlobalLatencyBench simulates 30 minutes of the global-cablecut scenario
// per iteration: latency-policy routing with per-stream weight rows, the
// per-completion observation tap, the EWMA/P² fold at every 15 s probe and a
// mid-run link fault.  This is the lid on what the latency estimator adds to
// the request path relative to BenchmarkGlobalDirector.
func runGlobalLatencyBench(b *testing.B, eventWorkers int) {
	b.Helper()
	np, err := experiment.PolicyByKey("policy2")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := experiment.BuildScenario("global-cablecut", 42)
		if err != nil {
			b.Fatal(err)
		}
		sc.Horizon = 30 * simclock.Minute
		sc.EventWorkers = eventWorkers
		res, err := experiment.Run(sc, np)
		if err != nil {
			b.Fatal(err)
		}
		if res.Eras == 0 {
			b.Fatalf("degenerate run: eras=%d", res.Eras)
		}
		b.ReportMetric(res.SuccessRatio, "success-ratio")
	}
}

func BenchmarkGlobalLatency_1(b *testing.B) { runGlobalLatencyBench(b, 1) }
func BenchmarkGlobalLatency_4(b *testing.B) { runGlobalLatencyBench(b, 4) }
