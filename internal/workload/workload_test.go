package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

// immediateDispatcher completes every request instantly with the given
// response delay.
type immediateDispatcher struct {
	delay   simclock.Duration
	drop    bool
	submits int
}

func (d *immediateDispatcher) Submit(eng *simclock.Engine, req *cloudsim.Request) {
	d.submits++
	done := func(e *simclock.Engine) {
		req.OnDone(cloudsim.Outcome{
			Request: req,
			VM:      "fake-vm",
			Start:   req.Arrival,
			End:     e.Now(),
			Dropped: d.drop,
		})
	}
	if d.delay > 0 {
		eng.ScheduleFunc(d.delay, done)
	} else {
		done(eng)
	}
}

func TestMixesValidateAndNormalise(t *testing.T) {
	for _, m := range []Mix{BrowsingMix(), ShoppingMix(), OrderingMix()} {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %s failed validation: %v", m.Name, err)
		}
		if len(m.Entries) != 14 {
			t.Errorf("mix %s has %d interactions, want the 14 TPC-W interactions", m.Name, len(m.Entries))
		}
		if msf := m.MeanServiceFactor(); msf <= 0 || msf > 4 {
			t.Errorf("mix %s mean service factor = %v, want a small positive value", m.Name, msf)
		}
	}
	if err := (Mix{Name: "empty"}).Validate(); err == nil {
		t.Errorf("empty mix should fail validation")
	}
	neg := Mix{Name: "neg", Entries: []Interaction{{Name: "home", Weight: -1}}}
	if err := neg.Validate(); err == nil {
		t.Errorf("negative-weight mix should fail validation")
	}
}

func TestBrowsingMixIsBrowseDominated(t *testing.T) {
	m := BrowsingMix()
	browse, order := 0.0, 0.0
	orderClasses := map[string]bool{
		"shopping_cart": true, "customer_registration": true, "buy_request": true,
		"buy_confirm": true, "order_inquiry": true, "order_display": true,
		"admin_request": true, "admin_confirm": true,
	}
	for _, e := range m.Entries {
		if orderClasses[e.Name] {
			order += e.Weight
		} else {
			browse += e.Weight
		}
	}
	if frac := browse / (browse + order); frac < 0.90 {
		t.Fatalf("browsing mix should be ~95%% browse interactions, got %.2f", frac)
	}
}

func TestMixPickRespectsWeights(t *testing.T) {
	rng := simclock.NewRNG(17)
	m := BrowsingMix()
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.Pick(rng).Name]++
	}
	// "home" has weight 29/100 in the browsing mix.
	frac := float64(counts["home"]) / n
	if math.Abs(frac-0.29) > 0.02 {
		t.Fatalf("home frequency = %.3f, want ~0.29", frac)
	}
	if counts["admin_confirm"] > counts["product_detail"] {
		t.Fatalf("rare interaction drawn more often than a common one")
	}
}

func TestInteractionsCopy(t *testing.T) {
	a := Interactions()
	a[0].Name = "mutated"
	if Interactions()[0].Name == "mutated" {
		t.Fatalf("Interactions should return a copy")
	}
}

func TestBrowserClosedLoop(t *testing.T) {
	eng := simclock.NewEngine(5)
	disp := &immediateDispatcher{delay: 100 * simclock.Millisecond}
	metrics := NewMetrics()
	b := NewBrowser(BrowserConfig{
		ID: "eb1", Region: "region1", Mix: BrowsingMix(),
		ThinkTimeMean: 2 * simclock.Second,
	}, eng.RNG().Fork(), disp, metrics)

	b.Start(eng)
	if !b.Running() {
		t.Fatalf("browser should be running after Start")
	}
	b.Start(eng) // double start is a no-op
	if err := eng.Run(10 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	b.Stop()

	issued := metrics.Issued("region1")
	if issued == 0 {
		t.Fatalf("browser issued no requests")
	}
	// Closed loop with ~2.1s cycle over 600s => roughly 285 requests; allow a
	// generous band.
	if issued < 150 || issued > 500 {
		t.Fatalf("issued = %d, want roughly 600s / 2.1s cycles", issued)
	}
	if metrics.Completed("region1") != issued {
		t.Fatalf("all issued requests should have completed: issued=%d completed=%d",
			issued, metrics.Completed("region1"))
	}
	if rt := metrics.MeanResponseTime("region1"); math.Abs(rt-0.1) > 0.02 {
		t.Fatalf("mean response time = %v, want ~0.1s", rt)
	}
}

func TestBrowserStopEndsLoop(t *testing.T) {
	eng := simclock.NewEngine(6)
	disp := &immediateDispatcher{}
	metrics := NewMetrics()
	b := NewBrowser(BrowserConfig{ID: "eb1", Region: "r", Mix: BrowsingMix(), ThinkTimeMean: simclock.Second},
		eng.RNG().Fork(), disp, metrics)
	b.Start(eng)
	eng.ScheduleFunc(10*simclock.Second, func(*simclock.Engine) { b.Stop() })
	eng.RunUntilEmpty()
	if b.Running() {
		t.Fatalf("browser should have stopped")
	}
	after := metrics.Issued("r")
	// Nothing more can be issued because the queue drained.
	if after == 0 {
		t.Fatalf("browser should have issued requests before stopping")
	}
}

func TestBrowserTimeoutCountsAsAbandoned(t *testing.T) {
	eng := simclock.NewEngine(7)
	// A dispatcher that never completes requests.
	blackhole := DispatcherFunc(func(*simclock.Engine, *cloudsim.Request) {})
	metrics := NewMetrics()
	b := NewBrowser(BrowserConfig{
		ID: "eb1", Region: "r", Mix: BrowsingMix(),
		ThinkTimeMean: simclock.Second, Timeout: 3 * simclock.Second,
	}, eng.RNG().Fork(), blackhole, metrics)
	b.Start(eng)
	if err := eng.Run(30 * simclock.Second); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	b.Stop()
	if metrics.Timeouts("r") == 0 {
		t.Fatalf("requests against a black-hole dispatcher should time out")
	}
	if metrics.Completed("r") != 0 {
		t.Fatalf("no request should complete")
	}
}

func TestBrowserSessionAccounting(t *testing.T) {
	eng := simclock.NewEngine(8)
	disp := &immediateDispatcher{}
	b := NewBrowser(BrowserConfig{
		ID: "eb1", Region: "r", Mix: BrowsingMix(),
		ThinkTimeMean: 500 * simclock.Millisecond, SessionLength: 10,
	}, eng.RNG().Fork(), disp, NewMetrics())
	b.Start(eng)
	if err := eng.Run(2 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	b.Stop()
	if b.Sessions() == 0 {
		t.Fatalf("browser should have completed at least one 10-interaction session")
	}
	if b.ID() != "eb1" {
		t.Fatalf("ID() = %q", b.ID())
	}
}

func TestPopulationStartStopAndExpectedRate(t *testing.T) {
	eng := simclock.NewEngine(9)
	disp := &immediateDispatcher{delay: 50 * simclock.Millisecond}
	metrics := NewMetrics()
	pop := NewPopulation(PopulationConfig{
		Region: "region3", Clients: 32, ThinkTimeMean: 2 * simclock.Second,
		RampUp: 10 * simclock.Second,
	}, simclock.NewRNG(3), disp, metrics)

	if pop.Size() != 32 || len(pop.Browsers()) != 32 {
		t.Fatalf("population size = %d, want 32", pop.Size())
	}
	if pop.Region() != "region3" {
		t.Fatalf("region = %q", pop.Region())
	}
	if er := pop.ExpectedRate(); math.Abs(er-16) > 1e-9 {
		t.Fatalf("expected rate = %v, want 32/2 = 16 req/s", er)
	}

	pop.Start(eng)
	if err := eng.Run(5 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	pop.Stop()

	issued := metrics.Issued("region3")
	// ~16 req/s over 300s minus ramp => several thousand.
	if issued < 2000 {
		t.Fatalf("population issued only %d requests", issued)
	}
	if metrics.SuccessRatio("region3") < 0.99 {
		t.Fatalf("success ratio = %v, want ~1", metrics.SuccessRatio("region3"))
	}
}

func TestPopulationDefaultsToBrowsingMixAndThinkTime(t *testing.T) {
	pop := NewPopulation(PopulationConfig{Region: "r", Clients: 4}, simclock.NewRNG(1), &immediateDispatcher{}, NewMetrics())
	if er := pop.ExpectedRate(); math.Abs(er-4.0/7.0) > 1e-9 {
		t.Fatalf("expected rate with default think time = %v, want 4/7", er)
	}
	if pop.Browsers()[0].cfg.Mix.Name != "browsing" {
		t.Fatalf("default mix should be browsing, got %q", pop.Browsers()[0].cfg.Mix.Name)
	}
}

func TestOpenLoopGeneratesAtConfiguredRate(t *testing.T) {
	eng := simclock.NewEngine(10)
	disp := &immediateDispatcher{}
	metrics := NewMetrics()
	gen := NewOpenLoop(OpenLoopConfig{Region: "r", RatePerSec: 20}, simclock.NewRNG(2), disp, metrics)
	gen.Start(eng)
	gen.Start(eng) // double start is a no-op
	if err := eng.Run(5 * simclock.Minute); err != nil && err != simclock.ErrHorizonReached {
		t.Fatalf("run: %v", err)
	}
	gen.Stop()

	issued := float64(metrics.Issued("r"))
	want := 20.0 * 300
	if math.Abs(issued-want)/want > 0.1 {
		t.Fatalf("open loop issued %v requests, want ~%v", issued, want)
	}
}

func TestOpenLoopZeroRateDoesNothing(t *testing.T) {
	eng := simclock.NewEngine(11)
	metrics := NewMetrics()
	gen := NewOpenLoop(OpenLoopConfig{Region: "r", RatePerSec: 0}, simclock.NewRNG(2), &immediateDispatcher{}, metrics)
	gen.Start(eng)
	eng.RunUntilEmpty()
	if metrics.Issued("r") != 0 {
		t.Fatalf("zero-rate generator should not issue requests")
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := NewMetrics()
	req := &cloudsim.Request{ID: 1, Arrival: 0}
	m.issued("a")
	m.record("a", cloudsim.Outcome{Request: req, Start: 0, End: 0.5})
	m.issued("a")
	m.record("a", cloudsim.Outcome{Request: req, Start: 0, End: 2.0}) // SLA violation
	m.issued("b")
	m.record("b", cloudsim.Outcome{Request: req, Dropped: true})
	m.recordTimeout("b")

	if m.Issued("") != 3 || m.Completed("") != 2 || m.Dropped("") != 1 || m.Timeouts("") != 1 {
		t.Fatalf("global counters wrong: %s", m)
	}
	if m.SLAViolations("a") != 1 || m.SLAViolations("") != 1 {
		t.Fatalf("SLA violation accounting wrong")
	}
	if m.Completed("a") != 2 || m.Dropped("b") != 1 {
		t.Fatalf("per-region counters wrong")
	}
	if got := m.MeanResponseTime("a"); math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("mean response time = %v, want 1.25", got)
	}
	if m.ResponseTimeStdDev("a") <= 0 {
		t.Fatalf("stddev should be positive with two distinct samples")
	}
	if got := m.Regions(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("regions = %v", got)
	}
	if m.SuccessRatio("zzz") != 0 {
		t.Fatalf("success ratio of unknown region should be 0")
	}
	if m.String() == "" {
		t.Fatalf("metrics string should not be empty")
	}
}

// Property: Pick always returns an interaction that exists in the mix with a
// strictly positive weight.
func TestMixPickProperty(t *testing.T) {
	m := ShoppingMix()
	valid := map[string]bool{}
	for _, e := range m.Entries {
		if e.Weight > 0 {
			valid[e.Name] = true
		}
	}
	f := func(seed uint64) bool {
		rng := simclock.NewRNG(seed)
		for i := 0; i < 20; i++ {
			if !valid[m.Pick(rng).Name] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ServiceFactor of every interaction in every mix is positive, so
// the VM service-time model never sees a non-positive demand.
func TestServiceFactorsPositive(t *testing.T) {
	for _, m := range []Mix{BrowsingMix(), ShoppingMix(), OrderingMix()} {
		for _, e := range m.Entries {
			if e.ServiceFactor <= 0 {
				t.Errorf("mix %s interaction %s has non-positive service factor", m.Name, e.Name)
			}
		}
	}
}

func BenchmarkMixPick(b *testing.B) {
	m := BrowsingMix()
	rng := simclock.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Pick(rng)
	}
}

func BenchmarkClosedLoopPopulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := simclock.NewEngine(uint64(i) + 1)
		disp := &immediateDispatcher{delay: 50 * simclock.Millisecond}
		pop := NewPopulation(PopulationConfig{Region: "r", Clients: 64, ThinkTimeMean: 2 * simclock.Second},
			simclock.NewRNG(uint64(i)), disp, NewMetrics())
		pop.Start(eng)
		_ = eng.Run(1 * simclock.Minute)
	}
}
