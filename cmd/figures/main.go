// Command figures regenerates the evaluation artefacts of the paper: the
// time-series figures (Figure 3 with two regions, Figure 4 with three
// regions), the qualitative-claims summary backing Section VI-B, and the
// ablations the reproduction adds (β sweep, exploration-factor sweep,
// baseline policies, homogeneous regions).
//
// Usage examples:
//
//	figures -figure 3                      # regenerate Figure 3 (all policies)
//	figures -figure 4 -policy policy2      # one policy only
//	figures -figure 3 -csv out/            # also write the raw series as CSV
//	figures -summary                       # both figures + claims checklist
//	figures -ablation beta                 # β sweep for equation (1)
//	figures -ablation k                    # k sweep for Policy 3
//	figures -ablation baseline             # uniform / static baselines
//	figures -ablation homogeneous          # Policy 1 on homogeneous regions
//	figures -ablation predictor            # oracle vs. trained F2PM predictor
//	figures -ablation elasticity           # ADDVMS under a workload surge
//	figures -ablation cablecut             # passive latency learning through a cable cut
//	figures -ablation gossip               # convergence lag vs gossip round period
//	figures -scenarios figure3,figure4 -betas 0.25,0.75 -reps 10 \
//	        -sweep-csv sweep.csv -journal sweep.journal   # matrix sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/cli"
	"repro/internal/experiment"
	"repro/internal/simclock"
	"repro/internal/trace"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure to regenerate: 3 (two regions) or 4 (three regions)")
		policy   = flag.String("policy", "all", "policy to run: policy1, policy2, policy3 or all")
		summary  = flag.Bool("summary", false, "run both figures with all policies and print the claims checklist")
		ablation = flag.String("ablation", "", "ablation to run: beta, k, baseline or homogeneous")
		seed     = flag.Uint64("seed", 42, "deterministic simulation seed")
		horizon  = flag.Float64("horizon", 2, "simulated hours per run")
		csvDir   = flag.String("csv", "", "directory to write the raw time series as CSV files")
		cohorts  = flag.Int("cohort-clients", 0, "add this many cohort-compressed clients to every region of the figure scenario (0 = none; see the megaclients scenarios for 10^6-scale runs)")
		tracerFr = flag.Float64("tracer-fraction", -1, "fraction of every cohort simulated as individual browsers feeding the latency series, in [0, 1] (-1 keeps the default 1%)")
	)
	// Matrix-sweep mode (experiment.Matrix); the flag set is shared with
	// cmd/acmsim.  -workers also drives the non-sweep figure runs here.
	sweep := cli.RegisterSweepFlags(flag.CommandLine,
		runtime.GOMAXPROCS(0), "parallel simulation workers (results are identical for any worker count)")
	workers := sweep.Workers
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if sweep.Active() {
		// The sweep defines its own scenarios and output; a figure/ablation
		// flag alongside -scenarios would be silently ignored, so reject it.
		for _, f := range []string{"figure", "ablation", "summary", "csv", "policy", "cohort-clients", "tracer-fraction"} {
			if explicit[f] {
				fmt.Fprintf(os.Stderr, "figures: -%s does not apply to sweeps (-scenarios); see -policies/-betas/-sweep-csv\n", f)
				os.Exit(1)
			}
		}
		if err := runMatrix(sweep, *seed, *horizon); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}
	for _, f := range cli.SweepOnlyFlagNames(false) {
		if explicit[f] {
			fmt.Fprintf(os.Stderr, "figures: -%s only applies to sweeps; pass -scenarios to run one\n", f)
			os.Exit(1)
		}
	}

	if *cohorts < 0 {
		fmt.Fprintf(os.Stderr, "figures: -cohort-clients must be >= 0, got %d\n", *cohorts)
		os.Exit(1)
	}
	if explicit["tracer-fraction"] && (*tracerFr < 0 || *tracerFr > 1) {
		fmt.Fprintf(os.Stderr, "figures: -tracer-fraction must be in [0, 1], got %v\n", *tracerFr)
		os.Exit(1)
	}
	if err := run(*figure, *policy, *summary, *ablation, *seed, *horizon, *csvDir, *cohorts, *tracerFr, explicit["tracer-fraction"], *workers); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// runMatrix executes a sweep over registered scenarios on the shared
// pipeline (experiment.RunSweep), with checkpointed resume and CSV/JSON row
// output.
func runMatrix(sweep *cli.SweepFlags, seed uint64, horizonHours float64) error {
	m, err := sweep.Matrix(seed)
	if err != nil {
		return err
	}
	m.Horizon = simclock.Duration(horizonHours) * simclock.Hour
	opt := sweep.Options()

	fmt.Printf("sweep: %d jobs (%d workers)\n", m.Size(), opt.Workers)
	return experiment.RunSweepAndEmit(context.Background(), m, opt, *sweep.Journal, *sweep.CSV, *sweep.JSON, os.Stdout)
}

func run(figure int, policy string, summary bool, ablation string, seed uint64, horizonHours float64, csvDir string, cohortClients int, tracerFraction float64, tracerSet bool, workers int) error {
	horizon := simclock.Duration(horizonHours) * simclock.Hour
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opt := experiment.Options{Workers: workers}

	scenarioFor := func(fig int) (experiment.Scenario, error) {
		name := map[int]string{3: "figure3", 4: "figure4"}[fig]
		if name == "" {
			return experiment.Scenario{}, fmt.Errorf("unknown figure %d (use 3 or 4)", fig)
		}
		sc, err := experiment.BuildScenario(name, seed)
		if err != nil {
			return experiment.Scenario{}, err
		}
		sc.Horizon = horizon
		// -cohort-clients rides cohort-compressed populations alongside every
		// region's browsers; -tracer-fraction tunes how much of each cohort
		// feeds the latency series.
		if cohortClients > 0 {
			for i := range sc.Regions {
				sc.Regions[i].CohortClients = cohortClients
			}
		}
		if tracerSet {
			sc.TracerFraction = tracerFraction
		}
		return sc, nil
	}

	switch {
	case summary:
		// The full figure suite — both scenarios under every policy — runs as
		// one job matrix on the worker pool, so figure-4 jobs start while
		// figure-3 jobs are still in flight.
		policies := experiment.Policies()
		var scenarios []experiment.Scenario
		var jobs []experiment.Job
		for _, fig := range []int{3, 4} {
			sc, err := scenarioFor(fig)
			if err != nil {
				return err
			}
			scenarios = append(scenarios, sc)
			for _, np := range policies {
				jobs = append(jobs, experiment.Job{Index: len(jobs), Scenario: sc, Policy: np})
			}
		}
		fmt.Printf("running %d jobs (%d workers) ...\n", len(jobs), opt.Workers)
		results, err := experiment.RunParallel(context.Background(), jobs, opt)
		if err != nil {
			return err
		}
		if err := experiment.FirstError(results); err != nil {
			return err
		}
		for fi, sc := range scenarios {
			byKey := map[string]*experiment.Result{}
			for _, jr := range results[fi*len(policies) : (fi+1)*len(policies)] {
				byKey[jr.Job.Policy.Key] = jr.Result
			}
			if err := printScenario(sc, policies, byKey, csvDir); err != nil {
				return err
			}
		}
		return nil

	case ablation != "":
		return runAblation(ablation, seed, horizon, opt)

	case figure != 0:
		sc, err := scenarioFor(figure)
		if err != nil {
			return err
		}
		return runScenario(sc, policy, csvDir, opt)

	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -figure, -summary or -ablation")
	}
}

// runScenario runs one scenario under the requested policies on the parallel
// runner, printing the ASCII figures and the summary in presentation order,
// and optionally dumping CSVs.
func runScenario(sc experiment.Scenario, policy, csvDir string, opt experiment.Options) error {
	var policies []experiment.NamedPolicy
	if policy == "all" || policy == "" {
		policies = experiment.Policies()
	} else {
		np, err := experiment.PolicyByKey(policy)
		if err != nil {
			return err
		}
		policies = []experiment.NamedPolicy{np}
	}

	fmt.Printf("running %s under %d policies (%d workers) ...\n", sc.Name, len(policies), opt.Workers)
	results, err := experiment.RunPolicies(context.Background(), sc, policies, opt)
	if err != nil {
		return err
	}
	return printScenario(sc, policies, results, csvDir)
}

// printScenario renders one scenario's figures, summary table and (when every
// paper policy is present) the claims checklist, optionally dumping CSVs.
func printScenario(sc experiment.Scenario, policies []experiment.NamedPolicy, results map[string]*experiment.Result, csvDir string) error {
	for _, np := range policies {
		res := results[np.Key]
		fmt.Print(experiment.FigureReport(res))
		fmt.Println()
		if csvDir != "" {
			if err := writeCSVs(csvDir, sc.Name, np.Key, res); err != nil {
				return err
			}
		}
	}

	fmt.Printf("=== %s summary ===\n", sc.Name)
	fmt.Print(experiment.SummaryTable(results))
	if len(results) == len(experiment.Policies()) {
		fmt.Println("qualitative claims (Section VI-B):")
		fmt.Print(experiment.EvaluateClaims(results))
	}
	fmt.Println()
	return nil
}

// writeCSVs writes every recorded series set of one result as a CSV file.
func writeCSVs(dir, scenario, policy string, res *experiment.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, set := range res.Recorder.SetNames() {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s_%s.csv", scenario, policy, set))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := res.Recorder.WriteCSV(f, set); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

// runAblation executes one of the ablation studies.
func runAblation(kind string, seed uint64, horizon simclock.Duration, opt experiment.Options) error {
	sc, err := experiment.BuildScenario("figure3", seed)
	if err != nil {
		return err
	}
	sc.Horizon = horizon
	switch kind {
	case "beta":
		np, _ := experiment.PolicyByKey("policy2")
		pts, err := experiment.BetaSweep(sc, np, []float64{0.1, 0.25, 0.5, 0.75, 1.0}, opt)
		if err != nil {
			return err
		}
		fmt.Println("β sweep (equation 1 smoothing) under Policy 2, Figure 3 scenario:")
		fmt.Print(experiment.AblationTable(pts))
	case "k":
		pts, err := experiment.ExplorationKSweep(sc, []float64{0.5, 0.75, 1.0, 1.25}, opt)
		if err != nil {
			return err
		}
		fmt.Println("k sweep (equations 6 and 8) for Policy 3, Figure 3 scenario:")
		fmt.Print(experiment.AblationTable(pts))
	case "baseline":
		res, err := experiment.BaselineComparison(sc, opt)
		if err != nil {
			return err
		}
		fmt.Println("Policy 2 vs. non-adaptive baselines, Figure 3 scenario:")
		fmt.Print(experiment.SummaryTable(res))
	case "homogeneous":
		hom, err := experiment.BuildScenario("homogeneous", seed)
		if err != nil {
			return err
		}
		hom.Horizon = horizon
		results, err := experiment.RunPolicies(context.Background(), hom, experiment.Policies(), opt)
		if err != nil {
			return err
		}
		fmt.Println("all policies on three homogeneous regions (Policy 1 is expected to behave well here):")
		fmt.Print(experiment.SummaryTable(results))
	case "predictor":
		np, _ := experiment.PolicyByKey("policy2")
		res, err := experiment.PredictorComparison(sc, np, opt)
		if err != nil {
			return err
		}
		fmt.Println("oracle vs. trained F2PM predictor, Policy 2, Figure 3 scenario:")
		fmt.Print(experiment.SummaryTable(res))
	case "elasticity":
		el, err := experiment.BuildScenario("elasticity", seed)
		if err != nil {
			return err
		}
		np, _ := experiment.PolicyByKey("policy2")
		res, err := experiment.Run(el, np)
		if err != nil {
			return err
		}
		fmt.Println("ADDVMS elasticity under a mid-run workload surge (Policy 2):")
		fmt.Print(trace.ASCIIPlot(res.Recorder.Set("active_vms"), trace.PlotOptions{
			Title: "ACTIVE VMs per region", Height: 10, Width: 72}))
		fmt.Print(trace.ASCIIPlot(res.Recorder.Set("response_time"), trace.PlotOptions{
			Title: "client response time (s)", Height: 10, Width: 72}))
		fmt.Printf("mean response time %.3fs, SLA violations %.2f%%, success ratio %.4f\n",
			res.MeanResponseTime, 100*res.SLAViolationRatio, res.SuccessRatio)
	case "gossip":
		gs, err := experiment.BuildScenario("global-gossip", seed)
		if err != nil {
			return err
		}
		gs.Horizon = horizon
		np, _ := experiment.PolicyByKey("policy2")
		intervals := []simclock.Duration{
			5 * simclock.Second, 10 * simclock.Second, 20 * simclock.Second, 40 * simclock.Second,
		}
		pts, err := experiment.GossipIntervalSweep(gs, np, intervals, opt)
		if err != nil {
			return err
		}
		fmt.Println("gossip-interval sweep (3 replicas, global-gossip scenario): convergence lag vs message cost:")
		fmt.Print(experiment.GossipSweepTable(pts))
	case "cablecut":
		cc, err := experiment.BuildScenario("global-cablecut", seed)
		if err != nil {
			return err
		}
		cc.Horizon = horizon
		np, _ := experiment.PolicyByKey("policy2")
		res, err := experiment.Run(cc, np)
		if err != nil {
			return err
		}
		fmt.Println("passive latency learning through a mid-run cable cut (americas:region1 RTT doubles at minute 12):")
		fmt.Print(trace.ASCIIPlot(res.Recorder.Set("gslb_rtt"), trace.PlotOptions{
			Title: "learned round trip per stream:region (ms, EWMA)", Height: 10, Width: 72}))
		fmt.Print(trace.ASCIIPlot(res.Recorder.Set("gslb_routed"), trace.PlotOptions{
			Title: "cumulative routed requests per region", Height: 10, Width: 72}))
		regions := make([]string, 0, len(res.GSLBRouted))
		for region := range res.GSLBRouted {
			regions = append(regions, region)
		}
		sort.Strings(regions)
		for _, region := range regions {
			fmt.Printf("  %s: routed=%d\n", region, res.GSLBRouted[region])
		}
	default:
		return fmt.Errorf("unknown ablation %q (use beta, k, baseline, homogeneous, predictor, elasticity, cablecut or gossip)", kind)
	}
	return nil
}
