package simclock

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	eng := NewEngine(1)
	var order []float64
	eng.ScheduleFunc(5, func(*Engine) { order = append(order, 5) })
	eng.ScheduleFunc(1, func(*Engine) { order = append(order, 1) })
	eng.ScheduleFunc(3, func(*Engine) { order = append(order, 3) })
	eng.RunUntilEmpty()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 3 {
		t.Fatalf("expected 3 events, got %d", len(order))
	}
	if eng.Now() != 5 {
		t.Fatalf("clock should end at 5, got %v", eng.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	eng := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.ScheduleFunc(2, func(*Engine) { order = append(order, i) })
	}
	eng.RunUntilEmpty()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	eng.ScheduleFunc(1, func(*Engine) { fired++ })
	eng.ScheduleFunc(100, func(*Engine) { fired++ })
	err := eng.Run(10)
	if err != ErrHorizonReached {
		t.Fatalf("expected ErrHorizonReached, got %v", err)
	}
	if fired != 1 {
		t.Fatalf("expected 1 event before the horizon, got %d", fired)
	}
	if eng.Now() != 10 {
		t.Fatalf("clock should stop at the horizon, got %v", eng.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	h := eng.ScheduleFunc(1, func(*Engine) { fired = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Fatal("handle should report cancelled")
	}
	eng.RunUntilEmpty()
	if fired {
		t.Fatal("cancelled event must not fire")
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	eng.Ticker(1, func(e *Engine) {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	if err := eng.Run(1000); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if count != 5 {
		t.Fatalf("expected Stop after 5 ticks, got %d", count)
	}
}

func TestEngineScheduleInPastClamps(t *testing.T) {
	eng := NewEngine(1)
	eng.ScheduleFunc(10, func(e *Engine) {
		e.ScheduleAt(2, EventFunc(func(e2 *Engine) {
			if e2.Now() < 10 {
				t.Fatalf("event scheduled in the past fired at %v", e2.Now())
			}
		}))
	})
	eng.RunUntilEmpty()
}

func TestTickerStop(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	var stop func()
	stop = eng.Ticker(1, func(e *Engine) {
		count++
		if count == 3 {
			stop()
		}
	})
	eng.Run(100)
	if count != 3 {
		t.Fatalf("ticker should stop after 3 ticks, got %d", count)
	}
}

func TestEngineStep(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	eng.ScheduleFunc(1, func(*Engine) { fired++ })
	eng.ScheduleFunc(2, func(*Engine) { fired++ })
	if !eng.Step() || fired != 1 {
		t.Fatalf("first step should fire one event (fired=%d)", fired)
	}
	if !eng.Step() || fired != 2 {
		t.Fatalf("second step should fire one event (fired=%d)", fired)
	}
	if eng.Step() {
		t.Fatal("no events left, Step must return false")
	}
}

func TestEnginePendingTimes(t *testing.T) {
	eng := NewEngine(1)
	eng.ScheduleFunc(3, func(*Engine) {})
	eng.ScheduleFunc(1, func(*Engine) {})
	h := eng.ScheduleFunc(2, func(*Engine) {})
	h.Cancel()
	times := eng.PendingTimes()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("unexpected pending times %v", times)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var tm Time = 10
	if tm.Add(5) != 15 {
		t.Fatal("Add failed")
	}
	if tm.Add(5).Sub(tm) != 5 {
		t.Fatal("Sub failed")
	}
	if Duration(2.5).Seconds() != 2.5 {
		t.Fatal("Seconds failed")
	}
	if tm.String() == "" {
		t.Fatal("String should not be empty")
	}
	if Duration(1).Std().Seconds() != 1 {
		t.Fatal("Std conversion failed")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds should diverge, got %d collisions", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(_ uint16) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUniformMean(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Uniform(2, 4)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.02 {
		t.Fatalf("uniform(2,4) mean should be ~3, got %f", mean)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exp(5) mean should be ~5, got %f", mean)
	}
	if r.Exp(-1) != 0 {
		t.Fatal("non-positive mean must return 0")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean should be ~10, got %f", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("normal variance should be ~4, got %f", variance)
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(17)
	if r.Bool(0) {
		t.Fatal("p=0 must be false")
	}
	if !r.Bool(1) {
		t.Fatal("p=1 must be true")
	}
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency should be ~0.25, got %f", frac)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(23)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 20 {
		t.Fatalf("permutation missing elements: %v", p)
	}
}

func TestRNGChoice(t *testing.T) {
	r := NewRNG(29)
	counts := make([]int, 3)
	weights := []float64{1, 2, 1}
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	frac1 := float64(counts[1]) / float64(n)
	if math.Abs(frac1-0.5) > 0.01 {
		t.Fatalf("weighted choice wrong: middle weight fraction %f", frac1)
	}
	// All-zero weights fall back to uniform.
	idx := r.Choice([]float64{0, 0, 0})
	if idx < 0 || idx > 2 {
		t.Fatalf("fallback choice out of range: %d", idx)
	}
}

func TestRNGPoisson(t *testing.T) {
	r := NewRNG(31)
	sum := 0
	n := 50000
	for i := 0; i < n; i++ {
		sum += r.Poisson(4)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("poisson(4) mean should be ~4, got %f", mean)
	}
	// Large mean path.
	sum = 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(100)
	}
	mean = float64(sum) / float64(n)
	if math.Abs(mean-100) > 1 {
		t.Fatalf("poisson(100) mean should be ~100, got %f", mean)
	}
	if r.Poisson(0) != 0 {
		t.Fatal("poisson(0) must be 0")
	}
}

func TestRNGPareto(t *testing.T) {
	r := NewRNG(37)
	for i := 0; i < 1000; i++ {
		v := r.Pareto(1.5, 2)
		if v < 1.5 {
			t.Fatalf("pareto sample below scale: %f", v)
		}
	}
	if r.Pareto(0, 1) != 0 || r.Pareto(1, 0) != 0 {
		t.Fatal("invalid pareto parameters must return 0")
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream should diverge from parent, got %d collisions", same)
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(41)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	// Events scheduled by events must run in causal order.
	eng := NewEngine(1)
	var trace []string
	eng.ScheduleFunc(1, func(e *Engine) {
		trace = append(trace, "a")
		e.ScheduleFunc(1, func(*Engine) { trace = append(trace, "c") })
	})
	eng.ScheduleFunc(1.5, func(*Engine) { trace = append(trace, "b") })
	eng.RunUntilEmpty()
	want := []string{"a", "b", "c"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("causal order broken: %v", trace)
		}
	}
}

func TestTickerPanicsOnNonPositivePeriod(t *testing.T) {
	eng := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Ticker with period 0 must panic")
		}
	}()
	eng.Ticker(0, func(*Engine) {})
}
