// Package cli holds the flag surface cmd/acmsim and cmd/figures share: the
// matrix-sweep flag set (-scenarios/-policies/-betas/-reps/-workers and the
// sweep output flags) and the -rtt round-trip-matrix parser.  One definition
// means the two CLIs cannot drift apart in names, defaults or error text.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/experiment"
)

// SweepFlags is the matrix-sweep flag set after registration; values are
// live after fs.Parse.
type SweepFlags struct {
	Scenarios *string
	Policies  *string
	Betas     *string
	Reps      *int
	Workers   *int
	CSV       *string
	JSON      *string
	Journal   *string
}

// RegisterSweepFlags installs the shared sweep flags on fs.  The -workers
// default and usage differ between the CLIs (figures uses it for figure runs
// too), so the caller supplies them.
func RegisterSweepFlags(fs *flag.FlagSet, workersDefault int, workersUsage string) *SweepFlags {
	return &SweepFlags{
		Scenarios: fs.String("scenarios", "", "comma-separated registered scenarios: run the sweep matrix scenarios x policies x betas x reps instead of a single deployment"),
		Policies:  fs.String("policies", "", "comma-separated policy keys for the sweep (the paper's three policies when empty)"),
		Betas:     fs.String("betas", "", "comma-separated beta overrides for the sweep (each scenario's own beta when empty)"),
		Reps:      fs.Int("reps", 1, "independent replications per sweep cell (seeds derived per replication)"),
		Workers:   fs.Int("workers", workersDefault, workersUsage),
		CSV:       fs.String("sweep-csv", "", "write the sweep summary rows as CSV to this file"),
		JSON:      fs.String("sweep-json", "", "write the sweep summary rows as JSON to this file"),
		Journal:   fs.String("journal", "", "checkpoint completed sweep jobs to this file; re-running with the same matrix resumes from the missing jobs only"),
	}
}

// Active reports whether the sweep mode was selected (-scenarios set).
func (s *SweepFlags) Active() bool { return *s.Scenarios != "" }

// SweepOnlyFlagNames lists the registered flags that only make sense in
// sweep mode, for single-run rejection.  workersSweepOnly is true for CLIs
// where -workers has no single-run meaning (acmsim).
func SweepOnlyFlagNames(workersSweepOnly bool) []string {
	names := []string{"sweep-csv", "sweep-json", "journal", "betas", "reps", "policies"}
	if workersSweepOnly {
		names = append(names, "workers")
	}
	return names
}

// Matrix assembles the experiment.Matrix from the parsed sweep flags; the
// caller sets the Horizon itself (the two CLIs apply -hours/-horizon
// differently).
func (s *SweepFlags) Matrix(baseSeed uint64) (experiment.Matrix, error) {
	m := experiment.Matrix{
		Scenarios:    experiment.ParseList(*s.Scenarios),
		Policies:     experiment.ParseList(*s.Policies),
		Replications: *s.Reps,
		BaseSeed:     baseSeed,
	}
	if *s.Betas != "" {
		bs, err := experiment.ParseFloatList(*s.Betas)
		if err != nil {
			return experiment.Matrix{}, err
		}
		m.Betas = bs
	}
	return m, nil
}

// Options returns the parallel-runner options the sweep flags select.
func (s *SweepFlags) Options() experiment.Options {
	return experiment.Options{Workers: *s.Workers}
}

// ParseRTT turns "global=60,120;americas=80,140" into the per-stream
// round-trip matrix, one millisecond entry per deployed region in deployment
// order.  Row lengths are checked here so a mismatch names the stream —
// with the -rtt flag prefix — instead of surfacing as a generic gslb
// validation error.
func ParseRTT(spec string, regions int) (map[string][]float64, error) {
	rtt := map[string][]float64{}
	for _, rowSpec := range strings.Split(spec, ";") {
		rowSpec = strings.TrimSpace(rowSpec)
		if rowSpec == "" {
			continue
		}
		stream, list, ok := strings.Cut(rowSpec, "=")
		stream = strings.TrimSpace(stream)
		if !ok || stream == "" {
			return nil, fmt.Errorf("-rtt: row %q is not stream=ms1,ms2,...", rowSpec)
		}
		if _, dup := rtt[stream]; dup {
			return nil, fmt.Errorf("-rtt: stream %q listed twice", stream)
		}
		entries := strings.Split(list, ",")
		if len(entries) != regions {
			return nil, fmt.Errorf("-rtt: stream %q has %d entries, want one per deployed region (%d)", stream, len(entries), regions)
		}
		row := make([]float64, len(entries))
		for i, e := range entries {
			ms, err := strconv.ParseFloat(strings.TrimSpace(e), 64)
			if err != nil {
				return nil, fmt.Errorf("-rtt: stream %q entry %d: %v", stream, i, err)
			}
			row[i] = ms
		}
		rtt[stream] = row
	}
	if len(rtt) == 0 {
		return nil, fmt.Errorf("-rtt: no rows in %q", spec)
	}
	return rtt, nil
}
