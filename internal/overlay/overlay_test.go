package overlay

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	n := New()
	mustLink := func(a, b string, lat float64) {
		if err := n.AddLink(a, b, lat); err != nil {
			t.Fatalf("AddLink(%s,%s): %v", a, b, err)
		}
	}
	// A small irregular topology:
	//   a --1-- b --1-- c
	//   a ------5------ c
	//   c --2-- d
	mustLink("a", "b", 1)
	mustLink("b", "c", 1)
	mustLink("a", "c", 5)
	mustLink("c", "d", 2)
	return n
}

func TestAddLinkValidation(t *testing.T) {
	n := New()
	if err := n.AddLink("a", "a", 1); err == nil {
		t.Errorf("self link should be rejected")
	}
	if err := n.AddLink("a", "b", 0); err == nil {
		t.Errorf("zero latency should be rejected")
	}
	if err := n.AddLink("a", "b", -3); err == nil {
		t.Errorf("negative latency should be rejected")
	}
	if err := n.AddLink("a", "b", 2); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	// Updating an existing link changes its latency.
	if err := n.AddLink("b", "a", 9); err != nil {
		t.Fatalf("link update rejected: %v", err)
	}
	if got := n.Latency("a", "b"); got != 9 {
		t.Fatalf("updated latency = %v, want 9", got)
	}
}

func TestNodesAndAliveNodes(t *testing.T) {
	n := testNetwork(t)
	want := []string{"a", "b", "c", "d"}
	if got := n.Nodes(); !equalStrings(got, want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	n.FailNode("b")
	if got := n.AliveNodes(); !equalStrings(got, []string{"a", "c", "d"}) {
		t.Fatalf("AliveNodes() = %v", got)
	}
	if n.NodeAlive("b") {
		t.Fatalf("b should be down")
	}
	if !n.HasNode("b") {
		t.Fatalf("b should still exist")
	}
	if n.FailNode("zzz") {
		t.Fatalf("failing an unknown node should report false")
	}
	if !n.RestoreNode("b") {
		t.Fatalf("restore of known node should report true")
	}
	if n.RestoreNode("zzz") {
		t.Fatalf("restore of unknown node should report false")
	}
}

func TestShortestRoutePrefersLowLatencyPath(t *testing.T) {
	n := testNetwork(t)
	r, err := n.ShortestRoute("a", "c")
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	// a->b->c costs 2, the direct a->c link costs 5.
	if r.LatencyMs != 2 {
		t.Fatalf("latency = %v, want 2 (via b)", r.LatencyMs)
	}
	if r.Hops() != 2 || len(r.Path) != 3 || r.Path[1] != "b" {
		t.Fatalf("path = %v, want a->b->c", r.Path)
	}
	if r.String() == "" {
		t.Fatalf("route string should not be empty")
	}
}

func TestShortestRouteSameNode(t *testing.T) {
	n := testNetwork(t)
	r, err := n.ShortestRoute("a", "a")
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if r.Hops() != 0 || r.LatencyMs != 0 {
		t.Fatalf("self route should have zero hops and latency, got %+v", r)
	}
	if (Route{}).Hops() != 0 {
		t.Fatalf("empty route should have zero hops")
	}
}

func TestShortestRouteErrors(t *testing.T) {
	n := testNetwork(t)
	if _, err := n.ShortestRoute("a", "nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown destination should yield ErrUnknownNode, got %v", err)
	}
	n.FailNode("d")
	if _, err := n.ShortestRoute("a", "d"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("route to a failed node should be unreachable, got %v", err)
	}
	n.RestoreNode("d")
	n.AddNode("island")
	if _, err := n.ShortestRoute("a", "island"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("route to an isolated node should be unreachable, got %v", err)
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	n := testNetwork(t)
	if !n.FailLink("a", "b") {
		t.Fatalf("FailLink on existing link should return true")
	}
	if n.FailLink("a", "zzz") {
		t.Fatalf("FailLink on missing link should return false")
	}
	if !n.LinkFailed("b", "a") {
		t.Fatalf("link should be marked failed (order-insensitive)")
	}
	r, err := n.ShortestRoute("a", "c")
	if err != nil {
		t.Fatalf("route after link failure: %v", err)
	}
	if r.LatencyMs != 5 || r.Hops() != 1 {
		t.Fatalf("after failing a-b the route should fall back to the direct a-c link, got %+v", r)
	}
	if !n.RestoreLink("a", "b") {
		t.Fatalf("RestoreLink should return true")
	}
	if n.RestoreLink("x", "y") {
		t.Fatalf("RestoreLink on missing link should return false")
	}
	r, _ = n.ShortestRoute("a", "c")
	if r.LatencyMs != 2 {
		t.Fatalf("after restoring a-b the cheap path should be used again, got %v", r.LatencyMs)
	}
}

func TestNodeFailureDisablesTransit(t *testing.T) {
	n := testNetwork(t)
	n.FailNode("b")
	r, err := n.ShortestRoute("a", "c")
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if r.LatencyMs != 5 {
		t.Fatalf("with b down the direct a-c link must be used, got %v", r.LatencyMs)
	}
}

func TestLatencyAndReachable(t *testing.T) {
	n := testNetwork(t)
	if got := n.Latency("a", "d"); got != 4 {
		t.Fatalf("latency a-d = %v, want 4", got)
	}
	if !n.Reachable("a", "d") {
		t.Fatalf("a-d should be reachable")
	}
	n.FailLink("c", "d")
	if !math.IsInf(n.Latency("a", "d"), 1) {
		t.Fatalf("latency to an unreachable node should be +Inf")
	}
	if n.Reachable("a", "d") {
		t.Fatalf("a-d should be unreachable after failing c-d")
	}
}

func TestPartition(t *testing.T) {
	n := testNetwork(t)
	if got := n.Partition("a"); !equalStrings(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("partition of a = %v", got)
	}
	n.FailLink("c", "d")
	if got := n.Partition("d"); !equalStrings(got, []string{"d"}) {
		t.Fatalf("partition of d after isolation = %v", got)
	}
	if got := n.Partition("a"); !equalStrings(got, []string{"a", "b", "c"}) {
		t.Fatalf("partition of a after failing c-d = %v", got)
	}
	n.FailNode("a")
	if n.Partition("a") != nil {
		t.Fatalf("partition of a failed node should be nil")
	}
}

func TestLatencyMatrixAndLinks(t *testing.T) {
	n := testNetwork(t)
	m := n.LatencyMatrix([]string{"a", "b", "c"})
	if m[0][0] != 0 || m[0][1] != 1 || m[0][2] != 2 || m[2][0] != 2 {
		t.Fatalf("unexpected latency matrix: %v", m)
	}
	links := n.Links()
	if len(links) != 4 {
		t.Fatalf("links = %v, want 4 entries", links)
	}
	if !sort.StringsAreSorted(links) {
		t.Fatalf("links should be sorted")
	}
	n.FailLink("a", "b")
	found := false
	for _, l := range n.Links() {
		if l == "a-b: 1.0ms [failed]" {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed link should be annotated, got %v", n.Links())
	}
}

func TestPaperOverlayTopology(t *testing.T) {
	n := PaperOverlay()
	for _, region := range []string{"region1", "region2", "region3"} {
		if !n.HasNode(region) {
			t.Fatalf("paper overlay missing %s", region)
		}
	}
	// Direct links should be the preferred routes.
	if lat := n.Latency("region2", "region3"); lat != 8 {
		t.Fatalf("Frankfurt-Munich latency = %v, want 8", lat)
	}
	// Failing the direct Ireland-Munich link must reroute via Frankfurt or the
	// transit node, keeping the pair connected.
	n.FailLink("region1", "region3")
	r, err := n.ShortestRoute("region1", "region3")
	if err != nil {
		t.Fatalf("paper overlay should survive a single link failure: %v", err)
	}
	if r.Hops() < 2 {
		t.Fatalf("rerouted path should use an intermediate node, got %v", r.Path)
	}
	if r.LatencyMs <= 8 {
		t.Fatalf("rerouted latency should exceed the direct Frankfurt-Munich link, got %v", r.LatencyMs)
	}
}

// Property: for random failure subsets, any route returned is a valid path
// over live links with the latency equal to the sum of its hops, and never
// uses a failed link.
func TestRouteValidityProperty(t *testing.T) {
	base := [][3]interface{}{
		{"a", "b", 1.0}, {"b", "c", 1.0}, {"a", "c", 5.0}, {"c", "d", 2.0},
		{"d", "e", 1.0}, {"b", "e", 4.0}, {"a", "e", 9.0},
	}
	f := func(failMask uint8) bool {
		n := New()
		type lk struct {
			a, b string
			lat  float64
		}
		var links []lk
		for _, l := range base {
			a, b, lat := l[0].(string), l[1].(string), l[2].(float64)
			_ = n.AddLink(a, b, lat)
			links = append(links, lk{a, b, lat})
		}
		for i, l := range links {
			if failMask&(1<<uint(i)) != 0 {
				n.FailLink(l.a, l.b)
			}
		}
		r, err := n.ShortestRoute("a", "e")
		if err != nil {
			return errors.Is(err, ErrUnreachable)
		}
		// Validate the path hop by hop.
		total := 0.0
		for i := 0; i+1 < len(r.Path); i++ {
			x, y := r.Path[i], r.Path[i+1]
			if n.LinkFailed(x, y) {
				return false
			}
			lat := math.Inf(1)
			for _, l := range links {
				if (l.a == x && l.b == y) || (l.a == y && l.b == x) {
					if !n.LinkFailed(l.a, l.b) && l.lat < lat {
						lat = l.lat
					}
				}
			}
			if math.IsInf(lat, 1) {
				return false // hop not backed by any live link
			}
			total += lat
		}
		return math.Abs(total-r.LatencyMs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkShortestRoutePaperOverlay(b *testing.B) {
	n := PaperOverlay()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.ShortestRoute("region1", "region3"); err != nil {
			b.Fatal(err)
		}
	}
}
