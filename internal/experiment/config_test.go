package experiment

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/acm"
	"repro/internal/simclock"
)

func TestScenarioJSONRoundTrip(t *testing.T) {
	orig := Figure4Scenario(123)
	orig.VMC.ElasticityEnabled = true
	orig.Regions[0].SurgeClients = 100
	orig.Regions[0].SurgeAt = 20 * simclock.Minute

	var buf bytes.Buffer
	if err := SaveScenario(&buf, orig); err != nil {
		t.Fatalf("SaveScenario: %v", err)
	}
	if !strings.Contains(buf.String(), "\"region2\"") || !strings.Contains(buf.String(), "m3.small") {
		t.Fatalf("serialised scenario should mention the regions and instance types:\n%s", buf.String())
	}

	loaded, err := LoadScenario(&buf)
	if err != nil {
		t.Fatalf("LoadScenario: %v", err)
	}
	if loaded.Name != orig.Name || loaded.Seed != orig.Seed {
		t.Fatalf("identity fields lost: %+v", loaded)
	}
	if len(loaded.Regions) != 3 || loaded.Regions[0].Clients != orig.Regions[0].Clients {
		t.Fatalf("regions lost in round trip")
	}
	if loaded.Regions[0].SurgeClients != 100 || loaded.Regions[0].SurgeAt != 20*simclock.Minute {
		t.Fatalf("surge configuration lost in round trip: %+v", loaded.Regions[0])
	}
	if !loaded.VMC.ElasticityEnabled {
		t.Fatalf("VMC configuration lost in round trip")
	}
	if loaded.Horizon != orig.Horizon || loaded.Beta != orig.Beta {
		t.Fatalf("loop parameters lost in round trip")
	}
}

func TestLoadScenarioValidation(t *testing.T) {
	if _, err := LoadScenario(strings.NewReader("{nonsense")); err == nil {
		t.Errorf("malformed JSON should be rejected")
	}
	if _, err := LoadScenario(strings.NewReader(`{"Name":"x"}`)); err == nil {
		t.Errorf("a scenario without regions should be rejected")
	}
	if _, err := LoadScenario(strings.NewReader(`{"Name":"x","Regions":[{"Clients":10}]}`)); err == nil {
		t.Errorf("a region without a name should be rejected")
	}
	if _, err := LoadScenario(strings.NewReader(`{"Name":"x","Regions":[{"Region":{"Name":"r"},"Clients":10}]}`)); err == nil {
		t.Errorf("a region without an instance type should be rejected")
	}
	if _, err := LoadScenario(strings.NewReader(`{"Name":"x","Unknown":1}`)); err == nil {
		t.Errorf("unknown fields should be rejected")
	}
}

func TestLoadScenarioAppliesDefaults(t *testing.T) {
	raw := `{"Name":"minimal","Regions":[{"Region":{"Name":"r1","Type":{"Name":"m3.medium","VCPUs":1,"ClockGHz":2.5,"MemoryMB":3750,"BaseServiceMs":40,"MaxThreads":2048},"InitialActive":2},"Clients":32}]}`
	sc, err := LoadScenario(strings.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadScenario: %v", err)
	}
	if sc.Horizon != 2*simclock.Hour || sc.Beta != 0.5 || sc.ControlInterval != 60*simclock.Second {
		t.Fatalf("defaults not applied: %+v", sc)
	}
	if sc.Predictor != acm.PredictorOracle {
		t.Fatalf("default predictor not applied")
	}
}

func TestScenarioFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	orig := Figure3Scenario(7)
	if err := SaveScenarioFile(path, orig); err != nil {
		t.Fatalf("SaveScenarioFile: %v", err)
	}
	loaded, err := LoadScenarioFile(path)
	if err != nil {
		t.Fatalf("LoadScenarioFile: %v", err)
	}
	if loaded.Name != orig.Name || len(loaded.Regions) != len(orig.Regions) {
		t.Fatalf("file round trip lost data")
	}
	if _, err := LoadScenarioFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("loading a missing file should fail")
	}
	// A loaded scenario must actually run.
	loaded.Horizon = 10 * simclock.Minute
	loaded.Regions[0].Clients = 40
	loaded.Regions[1].Clients = 20
	np, err := PolicyByKey("policy2")
	if err != nil {
		t.Fatalf("PolicyByKey: %v", err)
	}
	if _, err := Run(loaded, np); err != nil {
		t.Fatalf("running a loaded scenario failed: %v", err)
	}
}
