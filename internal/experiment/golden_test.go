package experiment

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/simclock"
)

// The golden regression suite byte-pins the summary metrics of the paper's
// figure scenarios under every policy.  It exists so that refactors of the
// simulation core (such as the sharded region engine) can prove they change
// nothing at the default configuration: the goldens were recorded before the
// refactor, and any behavioural drift — down to a single RNG draw — shows up
// as a byte difference in the summary or in the hash of the raw series.
//
// Regenerate with:
//
//	go test ./internal/experiment -run TestGolden -update

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenHorizon keeps the pinned runs short enough for CI while still passing
// through ramp-up, several control eras, rejuvenations and steady state.
const goldenHorizon = 30 * simclock.Minute

// goldenSummary is the byte-pinned view of a Result.  Floats are formatted
// with strconv 'g' / full precision instead of being stored as JSON numbers:
// the encoding is exact (round-trips the bit pattern), stable across Go
// versions, and representable for ±Inf (ConvergenceTime is +Inf when a policy
// never converges).
type goldenSummary struct {
	Scenario  string `json:"scenario"`
	PolicyKey string `json:"policy"`
	Seed      uint64 `json:"seed"`

	Eras                     uint64   `json:"eras"`
	Converged                bool     `json:"converged"`
	RelativeSpread           string   `json:"relativeSpread"`
	ConvergenceTime          string   `json:"convergenceTime"`
	FractionOscillation      string   `json:"fractionOscillation"`
	FractionDirectionChanges string   `json:"fractionDirectionChanges"`
	MeanResponseTime         string   `json:"meanResponseTime"`
	TailResponseTime         string   `json:"tailResponseTime"`
	SLAViolationRatio        string   `json:"slaViolationRatio"`
	SuccessRatio             string   `json:"successRatio"`
	ForwardedFraction        string   `json:"forwardedFraction"`
	ProactiveRejuvenations   uint64   `json:"proactiveRejuvenations"`
	ReactiveRecoveries       uint64   `json:"reactiveRecoveries"`
	Crashes                  uint64   `json:"crashes"`
	FinalFractions           []string `json:"finalFractions"`

	// GSLBRouted and GSLBTransitions pin the global traffic director's
	// observable behaviour: how many requests each region received from the
	// director, and the exact health-state transition log (drain, failover,
	// failback) with control-timeline timestamps.  Both are absent for
	// scenarios without a director, so pre-GSLB goldens are unchanged.
	GSLBRouted      map[string]uint64 `json:"gslbRouted,omitempty"`
	GSLBTransitions []string          `json:"gslbTransitions,omitempty"`

	// Gossip pins the replicated health plane's protocol and convergence
	// counters (message conservation, converged-update count, mean
	// propagation lag).  Absent without GossipReplicas, so central-director
	// goldens are unchanged.
	Gossip *goldenGossip `json:"gossip,omitempty"`

	// SeriesSHA256 hashes every recorded raw series (the full CSV dump), so
	// the golden pins not just the summary but the entire observable run.
	SeriesSHA256 string `json:"seriesSHA256"`
}

// goldenGossip is the byte-pinned view of gossip.Stats.
type goldenGossip struct {
	Replicas      int    `json:"replicas"`
	Rounds        uint64 `json:"rounds"`
	Sent          uint64 `json:"sent"`
	Delivered     uint64 `json:"delivered"`
	Dropped       uint64 `json:"dropped"`
	Converged     int    `json:"converged"`
	Pending       int    `json:"pending"`
	MeanLag       string `json:"meanLagSeconds"`
	MaxDivergence uint64 `json:"maxDivergence"`
}

// gf formats a float64 exactly (shortest representation that round-trips).
func gf(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func goldenFromResult(r *Result) (goldenSummary, error) {
	var csv bytes.Buffer
	if err := r.Recorder.WriteAllCSV(&csv); err != nil {
		return goldenSummary{}, fmt.Errorf("serialising recorder: %w", err)
	}
	sum := sha256.Sum256(csv.Bytes())
	g := goldenSummary{
		Scenario:                 r.Scenario.Name,
		PolicyKey:                r.PolicyKey,
		Seed:                     r.Scenario.Seed,
		Eras:                     r.Eras,
		Converged:                r.RMTTFConvergence.Converged,
		RelativeSpread:           gf(r.RMTTFConvergence.RelativeSpread),
		ConvergenceTime:          gf(r.RMTTFConvergence.ConvergenceTime),
		FractionOscillation:      gf(r.FractionOscillation),
		FractionDirectionChanges: gf(r.FractionDirectionChanges),
		MeanResponseTime:         gf(r.MeanResponseTime),
		TailResponseTime:         gf(r.TailResponseTime),
		SLAViolationRatio:        gf(r.SLAViolationRatio),
		SuccessRatio:             gf(r.SuccessRatio),
		ForwardedFraction:        gf(r.ForwardedFraction),
		ProactiveRejuvenations:   r.ProactiveRejuvenations,
		ReactiveRecoveries:       r.ReactiveRecoveries,
		Crashes:                  r.Crashes,
		GSLBRouted:               r.GSLBRouted,
		GSLBTransitions:          r.GSLBTransitions,
		SeriesSHA256:             hex.EncodeToString(sum[:]),
	}
	for _, f := range r.FinalFractions {
		g.FinalFractions = append(g.FinalFractions, gf(f))
	}
	if r.Gossip != nil {
		g.Gossip = &goldenGossip{
			Replicas:      r.Gossip.Replicas,
			Rounds:        r.Gossip.Rounds,
			Sent:          r.Gossip.Sent,
			Delivered:     r.Gossip.Delivered,
			Dropped:       r.Gossip.Dropped,
			Converged:     r.Gossip.Converged,
			Pending:       r.Gossip.Pending,
			MeanLag:       gf(r.Gossip.MeanLagSeconds),
			MaxDivergence: r.Gossip.MaxDivergence,
		}
	}
	return g, nil
}

// TestGoldenFigureScenarios runs figure3 and figure4 under each of the
// paper's three policies and compares the byte-pinned summary against
// testdata/golden.  The scenarios run at their default configuration —
// in particular Shards=1 — so the sharded region engine is provably a no-op
// there.
func TestGoldenFigureScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six 30-minute simulations")
	}
	for _, name := range []string{"figure3", "figure4"} {
		for _, np := range Policies() {
			np := np
			t.Run(name+"/"+np.Key, func(t *testing.T) {
				sc, err := BuildScenario(name, 42)
				if err != nil {
					t.Fatal(err)
				}
				sc.Horizon = goldenHorizon
				res, err := Run(sc, np)
				if err != nil {
					t.Fatal(err)
				}
				g, err := goldenFromResult(res)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(g, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')

				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s-%s.json", name, np.Key))
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s", path)
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to record): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("summary drifted from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
				}
			})
		}
	}
}
