package tracing

// The span catalogue: every name an instrumentation point can append to a
// RequestTrace, with the package that emits it and what the span means.
// docs/TRACING.md is generated from this table (the SCENARIOS/METRICS
// pattern), so the taxonomy can never drift from the emitting code.

// Span and event names.  Spans carry a duration; events are instants.
const (
	// SpanRequest is the root span of every trace: client issue to sealed
	// completion (served, dropped or timed out).
	SpanRequest = "request"
	// EventGSLBRoute marks the global traffic director's routing decision:
	// which region the lane's table snapshot picked for the stream.
	EventGSLBRoute = "gslb.route"
	// SpanRTTSend is the geo half-RTT leg from the client's stream to the
	// routed region (latency-aware deployments only).
	SpanRTTSend = "rtt.send"
	// SpanRTTReturn is the half-RTT leg home after service.
	SpanRTTReturn = "rtt.return"
	// SpanForward is the inter-region overlay hop a forward plan adds when
	// the entry region hands the request to another region.
	SpanForward = "forward"
	// EventMailbox marks a cross-lane mailbox submission: the request left
	// its current engine lane and is delivered at the next epoch barrier.
	EventMailbox = "mailbox.post"
	// EventShardHop marks an intra-region hop to another engine shard when
	// the dispatch shard has no ACTIVE VM.
	EventShardHop = "shard.hop"
	// EventVMEnqueue marks arrival in a VM queue; the queue span below is
	// synthesised from it.
	EventVMEnqueue = "vm.enqueue"
	// EventRehome marks the completion re-homing hop back to the lane that
	// issued the request.
	EventRehome = "rehome"
	// SpanQueue is the synthesised VM queue wait: vm.enqueue to the service
	// start recorded in the outcome.
	SpanQueue = "queue"
	// SpanService is the synthesised VM service span: outcome start to end.
	SpanService = "service"
)

// SpanKind distinguishes catalogue rows.
type SpanKind string

// The three kinds of catalogue entries.
const (
	KindRoot    SpanKind = "root span"
	KindSpan    SpanKind = "span"
	KindInstant SpanKind = "instant"
)

// SpanDesc documents one catalogue entry.
type SpanDesc struct {
	Name   string
	Kind   SpanKind
	Source string
	Help   string
}

// Catalog returns the span taxonomy in lifecycle order.
func Catalog() []SpanDesc {
	return []SpanDesc{
		{SpanRequest, KindRoot, "internal/workload", "Client issue to sealed completion; args carry stream, request ID, weight, outcome, serving VM and region."},
		{EventGSLBRoute, KindInstant, "internal/acm", "Global traffic director routing decision: routed region, engine lane and health plane (central director or gossip replica) that produced the table snapshot."},
		{SpanRTTSend, KindSpan, "internal/acm", "Half-RTT geo leg from the client stream to the routed region, from the deployment's ground-truth RTT matrix."},
		{SpanRTTReturn, KindSpan, "internal/acm", "Half-RTT geo leg home after service; the client observes completion at its end."},
		{SpanForward, KindSpan, "internal/acm", "Inter-region overlay hop added when the forward plan sends the request away from its entry region."},
		{EventMailbox, KindInstant, "internal/acm", "Cross-lane mailbox submission; the request is delivered on the destination engine lane at the next epoch barrier."},
		{EventShardHop, KindInstant, "internal/pcam", "Intra-region hop to the next engine shard because the dispatch shard had no ACTIVE VM."},
		{EventVMEnqueue, KindInstant, "internal/cloudsim", "Arrival in a VM queue; names the VM."},
		{EventRehome, KindInstant, "internal/cloudsim", "Completion re-homed to the issuing lane (runs locally when already home, otherwise rides the mailbox)."},
		{SpanQueue, KindSpan, "internal/tracing", "Synthesised VM queue wait: vm.enqueue to the outcome's service start."},
		{SpanService, KindSpan, "internal/tracing", "Synthesised VM service span: the outcome's start to end."},
	}
}
