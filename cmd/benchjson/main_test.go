package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkRegionSharded_1-4         	       1	5701234567 ns/op	  123456 B/op	     789 allocs/op	         1.000 shards	      3508 req/s
BenchmarkRegionSharded_16-4        	       2	 660123456 ns/op	   65432 B/op	     321 allocs/op	        16.00 shards	     30303 req/s
BenchmarkFigure3_Policy2           	       1	3210987654 ns/op
PASS
ok  	repro	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	// The -4 GOMAXPROCS suffix must be stripped; the suffix-free name kept.
	sharded, ok := f.Benchmarks["BenchmarkRegionSharded_1"]
	if !ok {
		t.Fatalf("missing suffix-stripped BenchmarkRegionSharded_1: %+v", f.Benchmarks)
	}
	if got := sharded.NsPerOp(); got != 5701234567 {
		t.Fatalf("ns/op = %v, want 5701234567", got)
	}
	if got := sharded["B/op"]; got != 123456 {
		t.Fatalf("B/op = %v, want 123456", got)
	}
	if got := sharded["allocs/op"]; got != 789 {
		t.Fatalf("allocs/op = %v, want 789", got)
	}
	if got := sharded["req/s"]; got != 3508 {
		t.Fatalf("req/s = %v, want 3508", got)
	}
	if got := f.Benchmarks["BenchmarkFigure3_Policy2"].NsPerOp(); got != 3210987654 {
		t.Fatalf("plain-line ns/op = %v, want 3210987654", got)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1.0s\n")); err == nil {
		t.Fatal("empty benchmark output must be an error, not an empty gate")
	}
}

func TestWriteRoundTrips(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(f.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d", len(back.Benchmarks), len(f.Benchmarks))
	}
}

func mkFile(ns map[string]float64) *File {
	f := &File{Benchmarks: map[string]Metrics{}}
	for name, v := range ns {
		f.Benchmarks[name] = Metrics{"ns/op": v}
	}
	return f
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	baseline := mkFile(map[string]float64{"A": 1000, "B": 1000, "C": 1000})
	current := mkFile(map[string]float64{"A": 1100, "B": 1300, "C": 900, "New": 5000})

	regressions, missing := Compare(baseline, current, 0.20, 0.25)
	if len(missing) != 0 {
		t.Fatalf("unexpected missing: %v", missing)
	}
	if len(regressions) != 1 || regressions[0].Name != "B" || regressions[0].Metric != "ns/op" {
		t.Fatalf("want exactly B's ns/op flagged (+30%% > 20%% tolerance), got %+v", regressions)
	}
	if d := regressions[0].Delta; d < 0.29 || d > 0.31 {
		t.Fatalf("B delta = %v, want ~0.30", d)
	}
}

func TestCompareReportsMissingBenchmarks(t *testing.T) {
	baseline := mkFile(map[string]float64{"A": 1000, "Gone": 1000})
	current := mkFile(map[string]float64{"A": 1000})
	regressions, missing := Compare(baseline, current, 0.20, 0.25)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %+v", regressions)
	}
	if len(missing) != 1 || missing[0] != "Gone" {
		t.Fatalf("want [Gone] missing, got %v", missing)
	}
}

func TestCompareGatesMemoryMetrics(t *testing.T) {
	baseline := &File{Benchmarks: map[string]Metrics{
		"A": {"ns/op": 1000, "B/op": 1000, "allocs/op": 100},
		"B": {"ns/op": 1000, "B/op": 1000, "allocs/op": 100},
	}}
	current := &File{Benchmarks: map[string]Metrics{
		// ns/op inside 20%, B/op +50% (beyond the 25% mem tolerance).
		"A": {"ns/op": 1100, "B/op": 1500, "allocs/op": 100},
		// allocs/op +30%, B/op inside tolerance.
		"B": {"ns/op": 900, "B/op": 1100, "allocs/op": 130},
	}}
	regressions, missing := Compare(baseline, current, 0.20, 0.25)
	if len(missing) != 0 {
		t.Fatalf("unexpected missing: %v", missing)
	}
	if len(regressions) != 2 {
		t.Fatalf("want exactly A's B/op and B's allocs/op flagged, got %+v", regressions)
	}
	if regressions[0].Name != "A" || regressions[0].Metric != "B/op" {
		t.Fatalf("first regression = %+v, want A B/op", regressions[0])
	}
	if regressions[1].Name != "B" || regressions[1].Metric != "allocs/op" {
		t.Fatalf("second regression = %+v, want B allocs/op", regressions[1])
	}
}

func TestCompareSkipsAbsentMemoryMetrics(t *testing.T) {
	// Baselines recorded before -benchmem carry no B/op: the gate must not
	// fail on the missing metric, only on what both sides recorded.
	baseline := mkFile(map[string]float64{"A": 1000})
	current := &File{Benchmarks: map[string]Metrics{
		"A": {"ns/op": 1000, "B/op": 999999, "allocs/op": 999999},
	}}
	regressions, missing := Compare(baseline, current, 0.20, 0.25)
	if len(regressions) != 0 || len(missing) != 0 {
		t.Fatalf("absent baseline mem metrics must be skipped, got regressions=%+v missing=%v", regressions, missing)
	}
}

func TestCompareAnnotatesDeltaPct(t *testing.T) {
	baseline := &File{Benchmarks: map[string]Metrics{
		"A": {"ns/op": 1000, "B/op": 200, "allocs/op": 100},
	}}
	current := &File{Benchmarks: map[string]Metrics{
		"A": {"ns/op": 1100, "B/op": 100, "allocs/op": 100},
	}}
	Compare(baseline, current, 0.20, 0.25)
	dp, ok := current.DeltaPct["A"]
	if !ok {
		t.Fatalf("delta_pct not annotated: %+v", current.DeltaPct)
	}
	if got := dp["ns/op"]; got < 9.9 || got > 10.1 {
		t.Fatalf("delta_pct ns/op = %v, want ~10", got)
	}
	if got := dp["B/op"]; got < -50.1 || got > -49.9 {
		t.Fatalf("delta_pct B/op = %v, want ~-50", got)
	}
	if got := dp["allocs/op"]; got != 0 {
		t.Fatalf("delta_pct allocs/op = %v, want 0", got)
	}
	// The annotation must survive the JSON round trip the -annotate flag
	// performs, so the artifact is self-describing.
	var buf bytes.Buffer
	if err := current.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.DeltaPct["A"]["ns/op"] != dp["ns/op"] {
		t.Fatalf("delta_pct lost in round trip: %+v", back.DeltaPct)
	}
}

// TestCompareMissingBaselinePointsAtProcedure: a missing baseline file must
// produce the recording instruction, not a bare file-not-found.
func TestCompareMissingBaselinePointsAtProcedure(t *testing.T) {
	err := runCompare([]string{"-baseline", "testdata-does-not-exist/BENCH_baseline.json"})
	if err == nil {
		t.Fatal("expected an error for a missing baseline")
	}
	for _, want := range []string{"baseline", "missing", "make bench-baseline"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}
