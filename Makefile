# Build, verify and benchmark the ACM reproduction.
#
#   make check       # everything CI runs: fmt, vet, build, race tests, bench smoke
#   make test        # plain test suite
#   make race        # full suite under the race detector
#   make bench       # the complete evaluation as benchmarks
#   make bench-smoke # one cheap iteration of the Figure 3 benchmarks

GO ?= go

.PHONY: check fmt vet build test test-repeat race bench bench-smoke

check: fmt vet build race test-repeat bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-repeat:
	$(GO) test -short -count=2 ./internal/cloudsim/... ./internal/experiment/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-smoke:
	$(GO) test -bench=Figure3 -benchtime=1x -run='^$$' .
