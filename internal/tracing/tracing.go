// Package tracing is the request-path span layer of the reproduction: a
// deterministic, sampled, per-request event log threaded through the full
// lifecycle — issue, global routing decision, RTT legs, cross-lane mailbox
// hops, shard dispatch, VM queue wait, service, completion re-homing — plus
// the exporters that turn collected traces into Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing) and into the critical-path
// breakdown table of the acmsim report.
//
// Determinism contract: the sampling decision and the trace ID are pure
// functions of (trace seed, request ID) through the splitmix64 stream
// machinery (simclock.DeriveSeed) — no engine RNG is ever drawn, so enabling
// tracing changes no simulation behaviour, and the sampled set is identical
// for every EventWorkers/GOMAXPROCS value.  Span timestamps are sim-time,
// events within one trace are appended in causal order (a request lives on
// exactly one engine lane at a time, and cross-lane moves happen through
// mailbox posts that carry a happens-before edge), and the exporter sorts
// traces canonically by trace ID before writing — so the exported bytes are
// independent of the wall-clock order in which worker goroutines sealed
// them, byte-identical at any worker count, and pinned by goldens like every
// other plane.
package tracing

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/simclock"
)

// Tracer owns the sampling decision and collects sealed traces.  One Tracer
// serves a whole deployment; Start is called on arbitrary engine lanes and
// performs no locking (the decision is pure), while Seal appends to the
// collected set under a mutex — the only cross-lane state, ordered
// canonically at export time.
type Tracer struct {
	seed      uint64
	fraction  float64
	threshold uint64

	mu     sync.Mutex
	traces []*RequestTrace
}

// NewTracer returns a tracer sampling the given fraction of requests on the
// stream derived from seed.  Fractions outside (0, 1] clamp: <= 0 samples
// nothing, >= 1 samples everything.
func NewTracer(seed uint64, fraction float64) *Tracer {
	t := &Tracer{seed: seed, fraction: fraction}
	switch {
	case fraction <= 0:
		t.threshold = 0
	case fraction >= 1:
		t.threshold = ^uint64(0)
	default:
		// The top 53 bits of the derived hash, mapped to [0, 1), decide the
		// sample — the same uniform mapping RNG.Float64 uses, but on a pure
		// derived stream so no engine RNG state is consumed.
		t.threshold = uint64(fraction * float64(1<<53))
	}
	return t
}

// SampleFraction returns the configured sampling fraction.
func (t *Tracer) SampleFraction() float64 { return t.fraction }

// hashString is FNV-1a over the request ID, the same construction the
// Manager uses to derive per-purpose seed streams from names.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// traceID derives the 64-bit trace ID of a request from its (stream,
// request ID) identity.  It doubles as the sampling variate: the decision
// and the ID come from one derivation, so a request's identity in
// exemplars, exports and goldens is stable.
func (t *Tracer) traceID(stream string, requestID uint64) uint64 {
	return simclock.DeriveSeed(t.seed, hashString(stream), requestID)
}

// Sampled reports the sampling decision for a request identity without
// starting a trace.
func (t *Tracer) Sampled(stream string, requestID uint64) bool {
	if t == nil || t.threshold == 0 {
		return false
	}
	if t.threshold == ^uint64(0) {
		return true
	}
	return t.traceID(stream, requestID)>>11 < t.threshold
}

// Start returns the trace for a sampled request, or nil when the request
// falls outside the sample.  All RequestTrace methods are nil-receiver safe,
// so instrumentation points write `req.Trace.Event(...)` unconditionally.
func (t *Tracer) Start(stream string, requestID uint64, weight uint64, at simclock.Time) *RequestTrace {
	if !t.Sampled(stream, requestID) {
		return nil
	}
	if weight == 0 {
		weight = 1
	}
	return &RequestTrace{
		tracer:    t,
		TraceID:   t.traceID(stream, requestID),
		Stream:    stream,
		RequestID: requestID,
		Weight:    weight,
		Issued:    at,
	}
}

// collect appends a sealed trace.  Collection order is wall-clock dependent
// (whichever lane seals first); Traces sorts canonically, so order here never
// reaches an exported byte.
func (t *Tracer) collect(rt *RequestTrace) {
	t.mu.Lock()
	t.traces = append(t.traces, rt)
	t.mu.Unlock()
}

// Len returns the number of collected traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Traces returns the collected traces in canonical order: by trace ID, ties
// broken by (stream, request ID).  The returned slice is a copy.
func (t *Tracer) Traces() []*RequestTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*RequestTrace, len(t.traces))
	copy(out, t.traces)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		return a.RequestID < b.RequestID
	})
	return out
}

// Event is one annotation on a request's lifecycle: an instant (Dur == 0) or
// a sub-span (Dur > 0), named from the span catalogue.
type Event struct {
	Name   string
	At     simclock.Time
	Dur    simclock.Duration
	Detail string
}

// RequestTrace is the append-only event log of one sampled request.  It is
// deliberately lock-free: a request's lifecycle is sequential — it lives on
// one engine lane at a time, and every cross-lane move rides a mailbox post,
// which is a happens-before edge — so appends can never race.
type RequestTrace struct {
	tracer *Tracer

	TraceID   uint64
	Stream    string
	RequestID uint64
	Weight    uint64
	Issued    simclock.Time

	Events []Event

	// Completion summary, valid once Sealed.
	Sealed  bool
	Outcome string // "ok", "dropped" or "timeout"
	Start   simclock.Time
	End     simclock.Time
	VM      string
	Region  string
}

// IDString renders the trace ID the way exemplars and exports carry it.
func (rt *RequestTrace) IDString() string { return fmt.Sprintf("%016x", rt.TraceID) }

// Event appends an instant annotation.  Safe on a nil trace.
func (rt *RequestTrace) Event(name string, at simclock.Time, detail string) {
	if rt == nil || rt.Sealed {
		return
	}
	rt.Events = append(rt.Events, Event{Name: name, At: at, Detail: detail})
}

// Span appends a duration annotation.  Safe on a nil trace.
func (rt *RequestTrace) Span(name string, at simclock.Time, d simclock.Duration, detail string) {
	if rt == nil || rt.Sealed {
		return
	}
	rt.Events = append(rt.Events, Event{Name: name, At: at, Dur: d, Detail: detail})
}

// Seal closes the trace with its completion summary and hands it to the
// tracer.  Exactly-once: later calls (a served completion arriving after a
// client-side timeout sealed the trace) are ignored.  Safe on a nil trace.
func (rt *RequestTrace) Seal(outcome string, start, end simclock.Time, vm, region string) {
	if rt == nil || rt.Sealed {
		return
	}
	rt.Sealed = true
	rt.Outcome = outcome
	rt.Start, rt.End = start, end
	rt.VM, rt.Region = vm, region
	rt.tracer.collect(rt)
}

// enqueueAt returns the last vm.enqueue timestamp, used to synthesise the
// queue-wait span: the request left the queue at Outcome.Start.
func (rt *RequestTrace) enqueueAt() (simclock.Time, bool) {
	for i := len(rt.Events) - 1; i >= 0; i-- {
		if rt.Events[i].Name == EventVMEnqueue {
			return rt.Events[i].At, true
		}
	}
	return 0, false
}

// QueueWait returns the synthesised VM queue wait (enqueue to service start),
// zero when the request never reached a VM queue.
func (rt *RequestTrace) QueueWait() simclock.Duration {
	if !rt.Sealed || rt.Outcome != OutcomeOK {
		return 0
	}
	enq, ok := rt.enqueueAt()
	if !ok || rt.Start < enq {
		return 0
	}
	return rt.Start.Sub(enq)
}

// ServiceTime returns the VM service span (start to end) of a served trace.
func (rt *RequestTrace) ServiceTime() simclock.Duration {
	if !rt.Sealed || rt.Outcome != OutcomeOK || rt.End < rt.Start {
		return 0
	}
	return rt.End.Sub(rt.Start)
}

// ResponseTime returns the client-observed issue-to-completion duration.
func (rt *RequestTrace) ResponseTime() simclock.Duration {
	if !rt.Sealed || rt.End < rt.Issued {
		return 0
	}
	return rt.End.Sub(rt.Issued)
}

// Outcome values of a sealed trace.
const (
	OutcomeOK      = "ok"
	OutcomeDropped = "dropped"
	OutcomeTimeout = "timeout"
)
